// Seeded randomized end-to-end differential fuzzer (docs/TESTING.md):
//
//  - random traces through SmashPipeline at threads {1, 4} x join budgets
//    {unbounded, tiny} must produce identical SmashResults — every
//    execution strategy (probe-parallel joins, key-range-sharded joins,
//    chunked-parallel Louvain, concurrent dimension fan-out with the
//    weighted budget split) is a pure wall-clock/memory trade;
//  - random event schedules (late events, multi-epoch gaps) through sync
//    vs async StreamEngines must publish byte-identical final snapshots
//    with every epoch close accounted.
//
// Runs fuzz_seeds() seeds (default 20): SMASH_FUZZ_ITERS scales the seed
// count (the nightly long-fuzz job uses 500), SMASH_FUZZ_SEED pins a
// single failing seed for reproduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "durability/checkpoint.h"
#include "durability/file.h"
#include "durability/recover.h"
#include "durability/wal.h"
#include "stream/engine.h"
#include "stream_fuzz_helpers.h"
#include "synth/scenarios.h"
#include "synth/stream_gen.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "whois/whois.h"

namespace smash {
namespace {

using test::add_request;
using test::expect_identical_snapshots;
using test::fuzz_seeds;
using test::random_schedule;
using test::resolve;
using test::schedule_config;

// --- random batch traces -----------------------------------------------------

struct FuzzTrace {
  net::Trace trace;
  whois::Registry registry;
};

// Random trace with campaign-shaped structure (shared clients, payloads,
// IPs, sometimes whois records) over benign noise, so every dimension and
// the correlation/pruning tail see real work. Deterministic from the seed.
FuzzTrace random_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  FuzzTrace out;
  net::Trace& trace = out.trace;

  const std::uint32_t campaigns = 1 + static_cast<std::uint32_t>(rng.uniform(3));
  for (std::uint32_t c = 0; c < campaigns; ++c) {
    const std::uint32_t servers = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    const std::uint32_t bots = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    const bool shared_whois = rng.bernoulli(0.5);
    const bool shared_params = rng.bernoulli(0.3);
    whois::Record record;
    record.registrant = "actor" + std::to_string(c);
    record.email = "actor" + std::to_string(c) + "@mail.test";

    const std::string payload = "/payload" + std::to_string(c) + ".exe";
    for (std::uint32_t s = 0; s < servers; ++s) {
      const std::string host =
          "c" + std::to_string(c) + "s" + std::to_string(s) + ".test";
      for (std::uint32_t b = 0; b < bots; ++b) {
        const std::string client =
            "bot" + std::to_string(c) + "_" + std::to_string(b);
        std::string path = payload;
        if (shared_params) {
          path += "?id=" + std::to_string(rng.uniform(100)) + "&e=1";
        }
        add_request(trace, client, host, path);
        if (rng.bernoulli(0.4)) {
          add_request(trace, client, host,
                      "/extra" + std::to_string(rng.uniform(4)) + ".bin");
        }
      }
      // One or two IPs from a small per-campaign pool, so the IP-set
      // dimension finds shared infrastructure.
      resolve(trace, host,
              "10." + std::to_string(c) + ".0." + std::to_string(rng.uniform(3)));
      if (rng.bernoulli(0.5)) {
        resolve(trace, host,
                "10." + std::to_string(c) + ".0." + std::to_string(rng.uniform(3)));
      }
      if (shared_whois) out.registry.add(host, record);
    }
  }

  // Benign background: light random browsing.
  const std::uint32_t benign = 20 + static_cast<std::uint32_t>(rng.uniform(30));
  for (std::uint32_t s = 0; s < benign; ++s) {
    const std::string host = "site" + std::to_string(s) + ".org";
    const std::uint64_t visits = 1 + rng.uniform(5);
    for (std::uint64_t v = 0; v < visits; ++v) {
      add_request(trace, "user" + std::to_string(rng.uniform(40)), host,
                  "/page" + std::to_string(rng.uniform(8)) + ".html");
    }
    resolve(trace, host,
            "192.168." + std::to_string(s % 16) + "." + std::to_string(s));
  }

  // Sometimes a popular head server that trips the IDF filter.
  if (rng.bernoulli(0.5)) {
    for (std::uint32_t cl = 0; cl < 70; ++cl) {
      add_request(trace, "crowd" + std::to_string(cl), "portal.example",
                  "/index.html");
    }
    resolve(trace, "portal.example", "203.0.113.1");
  }

  trace.finalize();
  return out;
}

void expect_identical_results(const core::SmashResult& a,
                              const core::SmashResult& b,
                              const std::string& context) {
  ASSERT_EQ(a.pre.kept, b.pre.kept) << context;
  ASSERT_EQ(a.dims.size(), b.dims.size()) << context;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const auto& da = a.dims[d];
    const auto& db = b.dims[d];
    EXPECT_EQ(da.dimension, db.dimension) << context;
    EXPECT_EQ(da.ash_of, db.ash_of) << context << " dim=" << d;
    EXPECT_EQ(da.graph_edges, db.graph_edges) << context << " dim=" << d;
    EXPECT_EQ(da.modularity, db.modularity) << context << " dim=" << d;
    ASSERT_EQ(da.ashes.size(), db.ashes.size()) << context << " dim=" << d;
    for (std::size_t i = 0; i < da.ashes.size(); ++i) {
      EXPECT_EQ(da.ashes[i].members, db.ashes[i].members)
          << context << " dim=" << d << " ash=" << i;
      EXPECT_EQ(da.ashes[i].density, db.ashes[i].density)
          << context << " dim=" << d << " ash=" << i;
    }
    // The postings-cap counters are execution-invariant; only the
    // memory-shape counters (shard_passes / peak bytes) may differ.
    EXPECT_EQ(da.join_stats.skipped_keys, db.join_stats.skipped_keys)
        << context << " dim=" << d;
    EXPECT_EQ(da.join_stats.emitted_pairs, db.join_stats.emitted_pairs)
        << context << " dim=" << d;
    // Louvain trajectory counters are shared by every execution shape.
    EXPECT_EQ(da.louvain_stats.sweeps, db.louvain_stats.sweeps)
        << context << " dim=" << d;
    EXPECT_EQ(da.louvain_stats.moves, db.louvain_stats.moves)
        << context << " dim=" << d;
  }
  EXPECT_EQ(a.correlation.score, b.correlation.score) << context;
  EXPECT_EQ(a.correlation.groups, b.correlation.groups) << context;
  EXPECT_EQ(a.pruned.groups, b.pruned.groups) << context;
  ASSERT_EQ(a.campaigns.size(), b.campaigns.size()) << context;
  for (std::size_t c = 0; c < a.campaigns.size(); ++c) {
    EXPECT_EQ(a.campaigns[c].servers, b.campaigns[c].servers)
        << context << " campaign=" << c;
    EXPECT_EQ(a.campaigns[c].involved_clients, b.campaigns[c].involved_clients)
        << context << " campaign=" << c;
  }
}

core::SmashConfig fuzz_config(std::uint64_t seed, unsigned threads,
                              std::size_t budget) {
  core::SmashConfig config;
  config.idf_threshold = 50;
  config.enable_param_dimension = seed % 2 == 1;
  config.num_threads = threads;
  config.join_memory_budget_bytes = budget;
  return config;
}

TEST(FuzzParallelPipeline, RandomTracesThreadsAndBudgetsMatch) {
  constexpr std::size_t kTinyBudget = 2048;  // forces multi-pass sharded joins
  std::size_t campaigns_found = 0;
  for (const auto seed : fuzz_seeds(20)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const FuzzTrace input = random_trace(seed);

    const core::SmashPipeline reference(fuzz_config(seed, 1, 0));
    const auto expected = reference.run(input.trace, input.registry);
    campaigns_found += expected.campaigns.size();

    for (const unsigned threads : {1u, 4u}) {
      for (const std::size_t budget : {std::size_t{0}, kTinyBudget}) {
        if (threads == 1 && budget == 0) continue;  // the reference itself
        const core::SmashPipeline pipeline(fuzz_config(seed, threads, budget));
        const auto result = pipeline.run(input.trace, input.registry);
        expect_identical_results(expected, result,
                                 "threads=" + std::to_string(threads) +
                                     " budget=" + std::to_string(budget));
      }
    }
  }
  // The harness must exercise real detections, not vacuously-empty runs
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) EXPECT_GT(campaigns_found, 0u);
}

TEST(FuzzParallelPipeline, ReferenceRunIsDeterministic) {
  for (const auto seed : fuzz_seeds(5)) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const FuzzTrace a = random_trace(seed);
    const FuzzTrace b = random_trace(seed);
    ASSERT_EQ(a.trace.num_requests(), b.trace.num_requests());
    const core::SmashPipeline pipeline(fuzz_config(seed, 1, 0));
    expect_identical_results(pipeline.run(a.trace, a.registry),
                             pipeline.run(b.trace, b.registry), "rebuild");
  }
}

// --- random event schedules through the streaming engine ---------------------
//
// random_schedule / schedule_config / expect_identical_snapshots live in
// tests/stream_fuzz_helpers.h, shared with the crash-recovery matrix.

TEST(FuzzStreamEquivalence, RandomSchedulesSyncVsAsync) {
  std::size_t snapshots_with_verdicts = 0;
  for (const auto seed : fuzz_seeds(20)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;

    stream::StreamEngine sync_engine(schedule_config(seed, /*async=*/false),
                                     registry);
    for (const auto& event : events) synth::ingest_event(sync_engine, event);
    sync_engine.finish();

    stream::StreamEngine async_engine(schedule_config(seed, /*async=*/true),
                                      registry);
    for (const auto& event : events) synth::ingest_event(async_engine, event);
    async_engine.finish();

    EXPECT_EQ(sync_engine.epochs_closed_total(),
              async_engine.epochs_closed_total());
    const auto sync_snapshot = sync_engine.snapshot();
    const auto async_snapshot = async_engine.snapshot();
    ASSERT_NE(sync_snapshot, nullptr);
    ASSERT_NE(async_snapshot, nullptr);
    expect_identical_snapshots(*sync_snapshot, *async_snapshot);
    if (sync_snapshot->num_malicious_servers() > 0) ++snapshots_with_verdicts;

    // Every close is accounted, coalesced or not.
    std::uint64_t accounted = 0;
    for (const auto& record : async_engine.close_records()) {
      accounted += record.epochs_closed;
    }
    EXPECT_EQ(accounted, async_engine.epochs_closed_total());
    EXPECT_LE(async_engine.snapshots_published(),
              async_engine.epochs_closed_total());
  }
  // The schedules must produce real verdicts for the comparison to bite
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) EXPECT_GT(snapshots_with_verdicts, 0u);
}

TEST(FuzzStreamEquivalence, FinalSyncSnapshotMatchesBatchMineOfWindow) {
  // The sync engine's last snapshot must be what a batch run over the
  // assembled window would publish — the streaming/batch contract, held
  // under randomized late events and epoch gaps.
  std::uint64_t late_events_seen = 0;
  std::uint64_t gaps_seen = 0;
  for (const auto seed : fuzz_seeds(10)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;

    const auto config = schedule_config(seed, /*async=*/false);
    stream::StreamEngine engine(config, registry);
    for (const auto& event : events) synth::ingest_event(engine, event);
    engine.finish();

    const auto snapshot = engine.snapshot();
    ASSERT_NE(snapshot, nullptr);
    late_events_seen += snapshot->late_dropped() + snapshot->late_folded();
    for (const auto& record : engine.close_records()) {
      if (record.epochs_closed > 1) ++gaps_seen;
    }

    const net::Trace window = engine.assemble_window();
    const core::SmashPipeline pipeline(config.smash);
    const auto batch = pipeline.run(window, registry);
    ASSERT_EQ(snapshot->campaigns().size(), batch.campaigns.size());
    for (std::size_t c = 0; c < batch.campaigns.size(); ++c) {
      const auto& mined = batch.campaigns[c];
      const auto& served = snapshot->campaigns()[c];
      ASSERT_EQ(served.servers.size(), mined.servers.size());
      for (std::size_t s = 0; s < mined.servers.size(); ++s) {
        EXPECT_EQ(served.servers[s], batch.server_name(mined.servers[s]));
      }
      EXPECT_EQ(served.involved_clients, mined.involved_clients.size());
    }
  }
  // The schedule generator must actually exercise the paths under test
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) {
    EXPECT_GT(late_events_seen, 0u);
    EXPECT_GT(gaps_seen, 0u);
  }
}

// --- incremental vs full delta re-mining -------------------------------------
//
// Random schedules (late events, multi-epoch gaps, window slides) through a
// full-mine engine and an incremental one: every published snapshot must be
// byte-identical — the delta caches, the changed-2LD hint, the carried-edge
// merge and the partition reuse may only change wall-clock, never output.
// schedule_config varies threads {1, 4}, window sizes, and late-event
// policy across seeds.

TEST(FuzzIncrementalStream, RandomSchedulesIncrementalVsFullEveryClose) {
  std::size_t delta_mined_closes = 0;
  std::size_t fallback_closes = 0;
  std::size_t evicting_closes = 0;
  for (const auto seed : fuzz_seeds(12)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;
    const auto full_config = schedule_config(seed, /*async=*/false);
    auto incremental_config = full_config;
    incremental_config.incremental_mining = true;

    stream::StreamEngine full(full_config, registry);
    stream::StreamEngine incremental(incremental_config, registry);
    std::uint64_t seen = 0;
    const auto compare_published = [&] {
      ASSERT_EQ(full.snapshots_published(), incremental.snapshots_published());
      if (incremental.snapshots_published() == seen) return;
      seen = incremental.snapshots_published();
      const auto a = full.snapshot();
      const auto b = incremental.snapshot();
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      expect_identical_snapshots(*a, *b);
      EXPECT_TRUE(b->delta_stats().enabled);
      if (b->delta_stats().dims_delta > 0) ++delta_mined_closes;
      if (b->delta_stats().full_fallbacks() > 0) ++fallback_closes;
      if (b->delta_stats().epochs_evicted > 0) ++evicting_closes;
    };
    for (const auto& event : events) {
      synth::ingest_event(full, event);
      synth::ingest_event(incremental, event);
      compare_published();
      if (::testing::Test::HasFatalFailure()) return;
    }
    full.finish();
    incremental.finish();
    compare_published();
  }
  // The sweep must exercise both sides of the cache decision and real
  // window slides (a pinned seed may legitimately see only one).
  if (!test::fuzz_seed_pinned()) {
    EXPECT_GT(delta_mined_closes, 0u);
    EXPECT_GT(fallback_closes, 0u);
    EXPECT_GT(evicting_closes, 0u);
  }
}

TEST(FuzzIncrementalStream, RandomSchedulesIncrementalAsyncMatchesFullSync) {
  // Async coalescing skips intermediate windows, so the incremental path
  // sees multi-epoch deltas between mined windows; the final snapshot must
  // still match a full-mine sync engine's.
  for (const auto seed : fuzz_seeds(8)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;

    stream::StreamEngine full(schedule_config(seed, /*async=*/false), registry);
    for (const auto& event : events) synth::ingest_event(full, event);
    full.finish();

    auto incremental_config = schedule_config(seed, /*async=*/true);
    incremental_config.incremental_mining = true;
    // Throttle mines so closes pile up and coalesce deterministically often.
    incremental_config.mine_throttle_ms = seed % 2 == 0 ? 2 : 0;
    stream::StreamEngine incremental(incremental_config, registry);
    for (const auto& event : events) synth::ingest_event(incremental, event);
    incremental.finish();

    EXPECT_EQ(full.epochs_closed_total(), incremental.epochs_closed_total());
    const auto a = full.snapshot();
    const auto b = incremental.snapshot();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    expect_identical_snapshots(*a, *b);
  }
}

// --- randomized scenario-matrix configs --------------------------------------
//
// The scenario library (src/synth/scenarios.h) composes shapes the plain
// random schedule never produces: shared cloud pools tying campaigns to
// benign tenants, flash crowds, DGA bursts, diurnal load, jittered
// long-cadence polling. Randomizing the builder's specs per seed and
// running the stream through full-re-mine vs incremental engines extends
// the byte-identical-snapshot contract to those shapes. Picked up by the
// nightly 500-seed sweep via the *Fuzz* filter.

synth::Scenario random_matrix_scenario(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5ce7a210ULL);
  const std::uint64_t duration =
      (6 + rng.uniform(5)) * test::kFuzzEpochSeconds;
  synth::ScenarioBuilder builder("fuzz-scenario", seed, duration);
  const bool cloud = rng.bernoulli(0.5);
  if (cloud) {
    builder.enable_cloud_pool(4 + static_cast<std::uint32_t>(rng.uniform(6)));
  }

  synth::BenignSpec benign;
  benign.servers = 20 + static_cast<std::uint32_t>(rng.uniform(25));
  benign.clients = 15 + static_cast<std::uint32_t>(rng.uniform(20));
  benign.visits = 250 + static_cast<std::uint32_t>(rng.uniform(350));
  benign.arrival =
      rng.bernoulli(0.5) ? synth::Arrival::kDiurnal : synth::Arrival::kUniform;
  benign.cloud_fraction = cloud ? 0.3 : 0.0;
  builder.add_benign_background(benign);

  if (rng.bernoulli(0.3)) builder.add_popular_head(1, 80);
  if (rng.bernoulli(0.4)) {
    synth::FlashCrowdSpec crowd;
    crowd.servers = 3 + static_cast<std::uint32_t>(rng.uniform(3));
    // Below the idf_threshold of scenario_stream_config, or the spike is
    // filtered before it pressures anything.
    crowd.clients = 25 + static_cast<std::uint32_t>(rng.uniform(15));
    crowd.start_s = rng.uniform(duration);
    crowd.duration_s = test::kFuzzEpochSeconds * (1 + rng.uniform(2));
    builder.add_flash_crowd(crowd);
  }

  const std::uint64_t campaigns = rng.uniform(3);  // 0..2 (0 = benign-only)
  for (std::uint64_t k = 0; k < campaigns; ++k) {
    synth::CampaignSpec campaign;
    campaign.label = "fz" + std::to_string(k);
    campaign.servers = 2 + static_cast<std::uint32_t>(rng.uniform(5));
    campaign.bots = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    campaign.start_s = rng.uniform(duration);
    // May land past the stream end: the builder clamps (or drops) it.
    campaign.end_s = campaign.start_s + 1 + rng.uniform(duration);
    campaign.poll_interval_s =
        120 + static_cast<std::uint32_t>(rng.uniform(600));
    campaign.request_jitter_s = rng.uniform(campaign.poll_interval_s);
    if (rng.bernoulli(0.3)) {
      campaign.naming = synth::CampaignSpec::Naming::kDga;
    }
    campaign.shared_filename = rng.bernoulli(0.7);
    campaign.shared_ips = rng.bernoulli(0.7);
    campaign.shared_whois = rng.bernoulli(0.5);
    campaign.cloud_fronted = cloud && rng.bernoulli(0.3);
    builder.add_campaign(campaign);
  }
  return std::move(builder).build();
}

stream::StreamConfig scenario_stream_config(std::uint64_t seed) {
  stream::StreamConfig config;
  config.epoch_seconds = test::kFuzzEpochSeconds;
  config.window_epochs = 3 + static_cast<std::uint32_t>(seed % 3);
  config.smash.idf_threshold = 60;
  config.smash.num_threads = seed % 3 == 0 ? 4 : 1;
  return config;
}

TEST(FuzzScenarioStream, RandomScenarioConfigsIncrementalMatchesFull) {
  std::size_t snapshots_with_verdicts = 0;
  for (const auto seed : fuzz_seeds(8)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto scenario = random_matrix_scenario(seed);
    const auto full_config = scenario_stream_config(seed);
    auto incremental_config = full_config;
    incremental_config.incremental_mining = true;

    stream::StreamEngine full(full_config, scenario.whois);
    stream::StreamEngine incremental(incremental_config, scenario.whois);
    std::uint64_t seen = 0;
    const auto compare_published = [&] {
      ASSERT_EQ(full.snapshots_published(), incremental.snapshots_published());
      if (incremental.snapshots_published() == seen) return;
      seen = incremental.snapshots_published();
      const auto a = full.snapshot();
      const auto b = incremental.snapshot();
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      expect_identical_snapshots(*a, *b);
      if (a->num_malicious_servers() > 0) ++snapshots_with_verdicts;
    };
    for (const auto& event : scenario.events) {
      synth::ingest_event(full, event);
      synth::ingest_event(incremental, event);
      compare_published();
      if (::testing::Test::HasFatalFailure()) return;
    }
    full.finish();
    incremental.finish();
    compare_published();
  }
  // The randomized scenarios must produce real verdicts for the identity
  // gate to bite (over the full sweep; a pinned seed may be benign-only).
  if (!test::fuzz_seed_pinned()) EXPECT_GT(snapshots_with_verdicts, 0u);
}

// --- seeded WAL/checkpoint corruption fuzzer ---------------------------------
//
// The durability contract under random damage: recovery either (a) fails
// loudly with RecoveryError, or (b) lands on a state equal to replaying a
// PREFIX of the original event schedule — never a silently divergent one.
// The prefix property is checked end-to-end: the recovered engine is fed
// the rest of the schedule and its final snapshot must be byte-identical
// to an engine that saw the whole schedule uninterrupted.

std::string fuzz_dir(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("smash_fuzz_dur_" + tag))
      .string();
}

void corrupt_flip(const std::string& path, util::Rng& rng) {
  std::string data = durability::File::read_all(path);
  if (data.empty()) return;
  const std::uint64_t flips = 1 + rng.uniform(4);
  for (std::uint64_t f = 0; f < flips; ++f) {
    data[rng.uniform(data.size())] ^=
        static_cast<char>(1u << rng.uniform(8));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::vector<std::string> wal_segments_of(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& name : durability::File::list_dir(dir)) {
    if (durability::parse_segment_file_name(name)) segments.push_back(name);
  }
  return segments;  // list_dir sorts; zero-padded names sort numerically
}

std::vector<std::string> checkpoints_of(const std::string& dir) {
  std::vector<std::string> checkpoints;
  for (const auto& name : durability::File::list_dir(dir)) {
    if (durability::parse_checkpoint_file_name(name)) checkpoints.push_back(name);
  }
  return checkpoints;
}

// Recovers `dir`, feeds `events[from_event..)`, finishes, and requires the
// final snapshot to match `reference_digest`. Returns false when recovery
// failed loudly (RecoveryError) — the acceptable alternative.
bool recover_and_compare(const stream::StreamConfig& config,
                         const whois::Registry& registry,
                         const std::vector<synth::StreamEvent>& events,
                         std::size_t from_event,
                         const std::string& reference_digest) {
  std::unique_ptr<stream::StreamEngine> recovered;
  try {
    recovered = stream::StreamEngine::recover(config, registry);
  } catch (const durability::RecoveryError&) {
    return false;
  }
  for (std::size_t i = from_event; i < events.size(); ++i) {
    synth::ingest_event(*recovered, events[i]);
  }
  recovered->finish();
  const auto snapshot = recovered->snapshot();
  if (snapshot == nullptr) {
    // A schedule whose verdict-bearing window vanished entirely can only
    // happen when nothing was ever closed; the reference must agree.
    EXPECT_EQ(reference_digest, "");
    return true;
  }
  EXPECT_EQ(snapshot->digest(), reference_digest);
  return true;
}

TEST(FuzzDurability, CorruptedWalTruncatesToValidPrefixOrFailsLoudly) {
  const whois::Registry registry;
  std::size_t recovered_clean = 0;
  std::size_t failed_loudly = 0;
  for (const auto seed : fuzz_seeds(8)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    auto config = schedule_config(seed, /*async=*/false);
    config.durability_dir = fuzz_dir("wal_" + std::to_string(seed));
    config.fsync_policy = stream::WalFsync::kOff;
    config.checkpoint_every_epochs = 1000000;  // pure-WAL recovery
    std::filesystem::remove_all(config.durability_dir);

    // The uninterrupted run (and the reference digest).
    std::string reference_digest;
    {
      stream::StreamEngine engine(config, registry);
      // Simulated hard stop at stream end: no finish(), like a crash.
      for (const auto& event : events) synth::ingest_event(engine, event);
    }
    {
      auto reference = schedule_config(seed, /*async=*/false);
      stream::StreamEngine engine(reference, registry);
      for (const auto& event : events) synth::ingest_event(engine, event);
      engine.finish();
      const auto snapshot = engine.snapshot();
      if (snapshot != nullptr) reference_digest = snapshot->digest();
    }

    const auto segments = wal_segments_of(config.durability_dir);
    ASSERT_FALSE(segments.empty());
    util::Rng rng(seed ^ 0xc0ffeeULL);

    // Damage shape 1: truncate the LAST segment at a random byte — the
    // canonical torn-tail crash. Always recoverable to a prefix.
    {
      const std::string tail =
          config.durability_dir + "/" + segments.back();
      const auto size = durability::File::size_of(tail);
      durability::File::truncate_file(tail, rng.uniform(size + 1));
      auto recovered = stream::StreamEngine::recover(config, registry);
      EXPECT_FALSE(recovered->recovery_stats().used_checkpoint);
      const std::size_t applied =
          static_cast<std::size_t>(recovered->recovery_stats().events_replayed);
      ASSERT_LE(applied, events.size());
      for (std::size_t i = applied; i < events.size(); ++i) {
        synth::ingest_event(*recovered, events[i]);
      }
      recovered->finish();
      const auto snapshot = recovered->snapshot();
      ASSERT_NE(snapshot, nullptr);
      EXPECT_EQ(snapshot->digest(), reference_digest);
      ++recovered_clean;
    }

    // Damage shape 2: rebuild the log (the truncation above consumed it),
    // then flip random bits in a random segment. Recovery must truncate to
    // a valid prefix (flip landed in the last segment) or throw (earlier
    // segment) — never pass damage through.
    std::filesystem::remove_all(config.durability_dir);
    {
      stream::StreamEngine engine(config, registry);
      for (const auto& event : events) synth::ingest_event(engine, event);
    }
    {
      const auto fresh_segments = wal_segments_of(config.durability_dir);
      const std::string victim =
          config.durability_dir + "/" +
          fresh_segments[rng.uniform(fresh_segments.size())];
      corrupt_flip(victim, rng);

      std::unique_ptr<stream::StreamEngine> recovered;
      try {
        recovered = stream::StreamEngine::recover(config, registry);
      } catch (const durability::RecoveryError&) {
        ++failed_loudly;
      }
      if (recovered) {
        const std::size_t applied = static_cast<std::size_t>(
            recovered->recovery_stats().events_replayed);
        ASSERT_LE(applied, events.size());
        for (std::size_t i = applied; i < events.size(); ++i) {
          synth::ingest_event(*recovered, events[i]);
        }
        recovered->finish();
        const auto snapshot = recovered->snapshot();
        ASSERT_NE(snapshot, nullptr);
        EXPECT_EQ(snapshot->digest(), reference_digest);
        ++recovered_clean;
      }
    }
    std::filesystem::remove_all(config.durability_dir);
  }
  // Truncation damage always recovers; over the sweep both outcomes of the
  // bit-flip shape should appear (a pinned seed may only see one).
  EXPECT_GT(recovered_clean, 0u);
  if (!test::fuzz_seed_pinned()) EXPECT_GT(failed_loudly, 0u);
}

TEST(FuzzDurability, CorruptedCheckpointsFallBackOrFailLoudly) {
  const whois::Registry registry;
  std::size_t fell_back = 0;
  for (const auto seed : fuzz_seeds(6)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    auto config = schedule_config(seed, /*async=*/false);
    config.durability_dir = fuzz_dir("ckpt_" + std::to_string(seed));
    config.fsync_policy = stream::WalFsync::kOff;
    config.checkpoint_every_epochs = 2;
    std::filesystem::remove_all(config.durability_dir);

    std::string reference_digest;
    {
      stream::StreamEngine engine(config, registry);
      for (const auto& event : events) synth::ingest_event(engine, event);
    }
    {
      auto reference = schedule_config(seed, /*async=*/false);
      stream::StreamEngine engine(reference, registry);
      for (const auto& event : events) synth::ingest_event(engine, event);
      engine.finish();
      const auto snapshot = engine.snapshot();
      if (snapshot != nullptr) reference_digest = snapshot->digest();
    }

    const auto checkpoints = checkpoints_of(config.durability_dir);
    if (checkpoints.empty()) {
      std::filesystem::remove_all(config.durability_dir);
      continue;  // quiet schedule: nothing checkpointed, nothing to corrupt
    }
    util::Rng rng(seed ^ 0xf00dULL);

    // Corrupt the NEWEST checkpoint: recovery must skip it and win with the
    // previous checkpoint (or none) plus the longer WAL tail — the WAL is
    // intact, so the recovered state must equal the uninterrupted one.
    corrupt_flip(config.durability_dir + "/" + checkpoints.back(), rng);
    {
      std::uint64_t skipped = 0;
      durability::load_latest_checkpoint(config.durability_dir, &skipped);
      EXPECT_GE(skipped, 1u);
    }
    ASSERT_TRUE(recover_and_compare(config, registry, events, events.size(),
                                    reference_digest));
    ++fell_back;

    // Corrupt EVERY checkpoint: recovery replays from segment 1 — which
    // pruning may have removed, in which case it must fail loudly, not
    // fabricate a window.
    for (const auto& name : checkpoints_of(config.durability_dir)) {
      corrupt_flip(config.durability_dir + "/" + name, rng);
    }
    recover_and_compare(config, registry, events, events.size(),
                        reference_digest);

    std::filesystem::remove_all(config.durability_dir);
  }
  if (!test::fuzz_seed_pinned()) EXPECT_GT(fell_back, 0u);
}

}  // namespace
}  // namespace smash
