// End-to-end SMASH pipeline (paper Fig. 2): preprocessing -> ASH mining ->
// correlation -> pruning -> malicious campaign inference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/correlation.h"
#include "core/delta_mine.h"
#include "core/dimensions.h"
#include "core/preprocess.h"
#include "core/pruning.h"
#include "core/smash_config.h"
#include "net/trace.h"
#include "util/interner.h"
#include "whois/whois.h"

namespace smash::core {

struct Campaign {
  // Inferred malicious servers, as kept-indices into pre.kept, ascending.
  std::vector<std::uint32_t> servers;
  // Clients involved in the campaign: present on more than half of the
  // member servers (a victim's drive-by visitors do not count).
  std::vector<std::uint32_t> involved_clients;  // trace client ids

  std::size_t size() const noexcept { return servers.size(); }
  bool single_client() const noexcept { return involved_clients.size() <= 1; }
};

struct SmashResult {
  PreprocessResult pre;
  std::vector<DimensionAshes> dims;  // indexed by Dimension
  CorrelationResult correlation;
  PruneResult pruned;
  std::vector<Campaign> campaigns;
  // Incremental-mining counters (all-defaults on the batch / full-mine
  // paths: enabled == false). Not part of the snapshot digest or the
  // incremental-vs-full identity comparison.
  DeltaStats delta;

  const std::string& server_name(std::uint32_t kept_idx) const {
    return pre.agg.server_name(pre.kept[kept_idx]);
  }
  const ServerProfile& server_profile(std::uint32_t kept_idx) const {
    return pre.agg.profile(pre.kept[kept_idx]);
  }

  // All servers across campaigns matching the client-count filter;
  // `single_client` selects the paper's Appendix C population, otherwise
  // the main (>= 2 clients) population of Tables II/III.
  std::vector<std::uint32_t> detected_servers(bool single_client) const;
  std::vector<const Campaign*> detected_campaigns(bool single_client) const;

  // True when any dimension's join hit its postings cap, i.e. this window
  // exceeded the in-RAM postings budget and similarity counts may
  // undercount (see JoinOptions::max_postings_length). Streaming snapshots
  // carry this flag so oversized windows are reported, never silent.
  bool postings_budget_exceeded() const noexcept;

  // Memory-pressure observables of the run's joins, aggregated across
  // dimensions (per-dimension detail stays on DimensionAshes::join_stats).
  // Total key-range passes: equals the number of joins run when every
  // postings index fit SmashConfig::join_memory_budget_bytes in one pass;
  // anything above that counts bounded-memory sharding at work.
  std::size_t join_shard_passes() const noexcept;
  // Largest single-join resident postings footprint (bytes). Under the
  // concurrent dimension fan-out the per-dimension budget split keeps even
  // the SUM of concurrent footprints within the configured budget —
  // except the degenerate case where one key's postings alone exceed a
  // dimension's slice (that pass overshoots, and this accessor shows it;
  // see JoinStats::peak_resident_postings_bytes).
  std::size_t peak_resident_postings_bytes() const noexcept;

  // Louvain execution-shape counters summed across the dimensions'
  // community-detection runs (per-dimension detail stays on
  // DimensionAshes::louvain_stats). Observability only — partitions are
  // byte-identical for every thread count and chunk size; sweeps/moves are
  // invariant across both knobs, chunks/stale_reevals record how hard the
  // chunked path worked (both 0 when local moving ran serially).
  graph::LouvainStats louvain_stats() const noexcept;
};

class SmashPipeline {
 public:
  explicit SmashPipeline(SmashConfig config = {}) : config_(config) {}

  const SmashConfig& config() const noexcept { return config_; }

  SmashResult run(const net::Trace& trace, const whois::Registry& registry) const;

  // Mining/correlation/pruning/inference over an already-preprocessed
  // window. Lets callers that maintain aggregates incrementally (the
  // streaming engine's epoch assembler) skip re-aggregation, and is the
  // tail of run().
  SmashResult run_preprocessed(PreprocessResult pre,
                               const whois::Registry& registry) const;

  // The streaming delta entry: like run_preprocessed, but the mining stage
  // goes through `miner`, which reuses its per-dimension caches from the
  // previous close where `delta` allows (see core/delta_mine.h — with
  // config.delta_approximate_louvain off the result is byte-identical to
  // run_preprocessed on the same window). `window_clients` / `window_ips`
  // are the interners the window profiles' key ids refer to. DeltaStats
  // land in SmashResult::delta. Correlation, pruning, and campaign
  // inference always run from scratch — they are microseconds next to the
  // mine.
  SmashResult run_incremental(PreprocessResult pre,
                              const whois::Registry& registry,
                              DeltaMiner& miner,
                              const util::Interner& window_clients,
                              const util::Interner& window_ips,
                              const WindowDelta& delta) const;

 private:
  SmashResult run_tail(SmashResult result) const;

  SmashConfig config_;
};

}  // namespace smash::core
