// End-to-end integration tests: full pipeline + evaluation on the tiny
// synthetic world. These assert the paper's qualitative claims, not exact
// numbers: campaigns are found, noise herds are the FPs, plain benign
// servers are not flagged, thresholds trade recall for precision.
#include <gtest/gtest.h>

#include <set>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"

namespace smash::core {
namespace {

SmashConfig tiny_config() {
  SmashConfig config;
  config.idf_threshold = 60;  // tiny world has ~400 clients, not ~15k
  return config;
}

class PipelineOnTinyWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new synth::Dataset(synth::generate_world(synth::tiny_world()));
    result_ = new SmashResult(
        SmashPipeline(tiny_config()).run(dataset_->trace, dataset_->whois));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete dataset_;
    result_ = nullptr;
    dataset_ = nullptr;
  }

  static std::set<std::string> detected_names() {
    std::set<std::string> names;
    for (const auto& campaign : result_->campaigns) {
      for (auto member : campaign.servers) {
        names.insert(result_->server_name(member));
      }
    }
    return names;
  }

  static synth::Dataset* dataset_;
  static SmashResult* result_;
};

synth::Dataset* PipelineOnTinyWorld::dataset_ = nullptr;
SmashResult* PipelineOnTinyWorld::result_ = nullptr;

TEST_F(PipelineOnTinyWorld, PreprocessingReducesServers) {
  EXPECT_LT(result_->pre.servers_after_aggregation,
            result_->pre.servers_before_aggregation);
  EXPECT_LE(result_->pre.servers_after_filter,
            result_->pre.servers_after_aggregation);
  EXPECT_LT(result_->pre.requests_after_filter, result_->pre.total_requests);
}

TEST_F(PipelineOnTinyWorld, FindsCampaigns) {
  EXPECT_GE(result_->campaigns.size(), 5u);
  for (const auto& campaign : result_->campaigns) {
    EXPECT_GE(campaign.servers.size(), 2u);
    EXPECT_GE(campaign.involved_clients.size(), 1u);
  }
}

TEST_F(PipelineOnTinyWorld, DetectsZeusEntirely) {
  const auto names = detected_names();
  for (const auto& campaign : dataset_->truth.campaigns()) {
    if (campaign.name != "zeus-0") continue;
    for (const auto& server : campaign.servers) {
      EXPECT_TRUE(names.count(server)) << "zeus domain missed: " << server;
    }
  }
}

TEST_F(PipelineOnTinyWorld, DetectsMostIframeVictims) {
  std::size_t total = 0;
  std::size_t detected = 0;
  const auto names = detected_names();
  for (const auto& campaign : dataset_->truth.campaigns()) {
    if (campaign.name != "iframe-0") continue;
    for (const auto& server : campaign.servers) {
      ++total;
      detected += names.count(server);
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(detected * 10, total * 8);  // >= 80%
}

TEST_F(PipelineOnTinyWorld, NeverFlagsPlainBenignServers) {
  for (const auto& name : detected_names()) {
    const auto idx = dataset_->truth.campaign_of(name);
    const bool structured = idx.has_value();
    // Every detection is a campaign server, a noise server, or (via
    // pruning replacement) a benign structured-group member; arbitrary
    // tail/popular servers must never appear.
    if (!structured) {
      ADD_FAILURE() << "flagged unstructured benign server: " << name;
    } else {
      const auto kind = dataset_->truth.campaigns()[*idx].kind;
      EXPECT_NE(kind, ids::CampaignKind::kBenign)
          << "flagged benign-group server: " << name;
    }
  }
}

TEST_F(PipelineOnTinyWorld, NoSecondaryDimensionCampaignIsMissed) {
  // The deliberate false negative: campaign sharing only parameter
  // patterns (the paper's Cycbot analysis).
  const auto names = detected_names();
  for (const auto& campaign : dataset_->truth.campaigns()) {
    if (!campaign.name.starts_with("nosec-")) continue;
    for (const auto& server : campaign.servers) {
      EXPECT_FALSE(names.count(server))
          << "no-secondary-dimension server should be missed: " << server;
    }
  }
}

TEST_F(PipelineOnTinyWorld, DeterministicAcrossRuns) {
  const SmashResult again =
      SmashPipeline(tiny_config()).run(dataset_->trace, dataset_->whois);
  ASSERT_EQ(again.campaigns.size(), result_->campaigns.size());
  for (std::size_t i = 0; i < again.campaigns.size(); ++i) {
    EXPECT_EQ(again.campaigns[i].servers, result_->campaigns[i].servers);
  }
}

TEST_F(PipelineOnTinyWorld, ThresholdLadderShrinksDetections) {
  std::size_t previous = SIZE_MAX;
  for (const double thresh : {0.5, 0.8, 1.0, 1.5}) {
    const auto result = SmashPipeline(tiny_config().with_threshold(thresh))
                            .run(dataset_->trace, dataset_->whois);
    std::size_t servers = 0;
    for (const auto& campaign : result.campaigns) servers += campaign.servers.size();
    EXPECT_LE(servers, previous) << "thresh " << thresh;
    previous = servers;
  }
}

TEST_F(PipelineOnTinyWorld, EvaluatorFlagsOnlyNoiseAsUpdatedFp) {
  const Evaluator evaluator(dataset_->trace, dataset_->signatures,
                            dataset_->blacklist, dataset_->truth);
  const auto eval = evaluator.evaluate(*result_, /*single_client=*/false);
  EXPECT_GT(eval.campaign_counts.smash, 0);
  EXPECT_GE(eval.campaign_counts.false_positives, eval.campaign_counts.fp_updated);
  EXPECT_EQ(eval.detected_benign, 0);
  EXPECT_GT(eval.detected_truly_malicious, 0);
  // FP rate stays within an order of magnitude of the paper's 0.064%.
  EXPECT_LT(eval.fp_rate_updated, 0.02);
}

TEST_F(PipelineOnTinyWorld, EvaluatorFindsZeroDayCampaign) {
  // Zeus is 2013-signature-only: SMASH must report it although the 2012
  // IDS cannot (the paper's zero-day claim, Table X).
  const Evaluator evaluator(dataset_->trace, dataset_->signatures,
                            dataset_->blacklist, dataset_->truth);
  const auto eval = evaluator.evaluate(*result_, false);
  EXPECT_GT(eval.campaign_counts.ids2013_total + eval.campaign_counts.ids2013_partial,
            0);
  EXPECT_GT(eval.server_counts.ids2013, 0);
}

TEST_F(PipelineOnTinyWorld, FalseNegativesIncludeNoSecondaryThreat) {
  const Evaluator evaluator(dataset_->trace, dataset_->signatures,
                            dataset_->blacklist, dataset_->truth);
  const auto eval = evaluator.evaluate(*result_, false);
  bool nosec_missed = false;
  for (const auto& group : eval.false_negatives) {
    nosec_missed |= group.threat_id.find("nosec") != std::string::npos;
  }
  EXPECT_TRUE(nosec_missed);
}

TEST_F(PipelineOnTinyWorld, SingleClientCampaignsSeparated) {
  const auto multi = result_->detected_campaigns(false);
  const auto single = result_->detected_campaigns(true);
  EXPECT_EQ(multi.size() + single.size(), result_->campaigns.size());
  for (const auto* campaign : single) {
    EXPECT_LE(campaign->involved_clients.size(), 1u);
  }
  for (const auto* campaign : multi) {
    EXPECT_GE(campaign->involved_clients.size(), 2u);
  }
}

TEST_F(PipelineOnTinyWorld, DetectedServersDeduplicated) {
  const auto multi_servers = result_->detected_servers(false);
  std::set<std::uint32_t> unique(multi_servers.begin(), multi_servers.end());
  EXPECT_EQ(unique.size(), multi_servers.size());
}

}  // namespace
}  // namespace smash::core
