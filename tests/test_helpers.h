// Shared helpers for building tiny hand-crafted traces and seeded random
// inputs in unit tests. The random generators back the differential test
// harnesses (tests/louvain_parallel_test.cc, tests/fuzz_equivalence_test.cc
// — conventions in docs/TESTING.md): deterministic from the seed via
// util::Rng, so a failing seed printed by a test reproduces exactly.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "net/trace.h"
#include "util/rng.h"

namespace smash::test {

// Appends one request; interns names on the fly.
inline void add_request(net::Trace& trace, std::string_view client,
                        std::string_view host, std::string path,
                        std::string user_agent = "UA", std::string referrer = "",
                        std::uint16_t status = 200, std::uint32_t day = 0) {
  net::HttpRequest req;
  req.client = trace.intern_client(client);
  req.server = trace.intern_server(host);
  req.day = day;
  req.status = status;
  req.path = std::move(path);
  req.user_agent = std::move(user_agent);
  req.referrer = std::move(referrer);
  trace.add_request(std::move(req));
}

inline void resolve(net::Trace& trace, std::string_view host, std::string_view ip) {
  trace.add_resolution(trace.intern_server(host), trace.intern_ip(ip));
}

// --- seeded random inputs for the differential harnesses --------------------

// Uniform random weighted graph: `edges` edge samples over `n` nodes
// (duplicates sum their weights, GraphBuilder semantics), weights in
// (0, 1]. Self-loops are kept when sampled unless disabled — Louvain's
// aggregation produces them, so the detector must handle them.
inline graph::Graph random_weighted_graph(std::uint32_t n, std::uint32_t edges,
                                          std::uint64_t seed,
                                          bool allow_self_loops = true) {
  util::Rng rng(seed);
  graph::GraphBuilder builder(n);
  if (n == 0) return std::move(builder).build();
  for (std::uint32_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.uniform(n));
    const auto v = static_cast<std::uint32_t>(rng.uniform(n));
    if (u == v && !allow_self_loops) continue;
    const double weight =
        (1.0 + static_cast<double>(rng.uniform(1000))) / 1000.0;
    builder.add_edge(u, v, weight);
  }
  return std::move(builder).build();
}

// Planted communities with random bridges — the shape SMASH's similarity
// graphs take (campaign cliques, weak benign bridges), and the shape that
// makes Louvain run several sweeps and levels. `intra_p` is the in-cluster
// edge probability; each cluster sprouts a small number of weak bridges to
// random other clusters.
inline graph::Graph random_clustered_graph(std::uint32_t clusters,
                                           std::uint32_t cluster_size,
                                           double intra_p, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::uint32_t n = clusters * cluster_size;
  graph::GraphBuilder builder(n);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    const std::uint32_t base = c * cluster_size;
    for (std::uint32_t i = 0; i < cluster_size; ++i) {
      for (std::uint32_t j = i + 1; j < cluster_size; ++j) {
        if (!rng.bernoulli(intra_p)) continue;
        const double weight =
            0.5 + static_cast<double>(rng.uniform(500)) / 1000.0;
        builder.add_edge(base + i, base + j, weight);
      }
    }
    const std::uint32_t bridges = static_cast<std::uint32_t>(rng.uniform(3));
    for (std::uint32_t b = 0; b < bridges && clusters > 1; ++b) {
      std::uint32_t other = static_cast<std::uint32_t>(rng.uniform(clusters));
      if (other == c) other = (other + 1) % clusters;
      const auto from = base + static_cast<std::uint32_t>(rng.uniform(cluster_size));
      const auto to = other * cluster_size +
                      static_cast<std::uint32_t>(rng.uniform(cluster_size));
      builder.add_edge(from, to,
                       0.05 + static_cast<double>(rng.uniform(100)) / 1000.0);
    }
  }
  return std::move(builder).build();
}

// --- fuzz-harness environment knobs (docs/TESTING.md) -----------------------

// Seeds a randomized differential test should run. Default `count` seeds
// {1 .. count}; SMASH_FUZZ_ITERS=N rescales to N seeds (the nightly
// long-fuzz job runs 500); SMASH_FUZZ_SEED=S pins the run to the single
// seed S, which is how a failure printed by a previous run is reproduced.
// True when SMASH_FUZZ_SEED pins the run to one seed. Coverage/vacuity
// guards ("the sweep found at least one campaign") only hold over a full
// seed sweep, so tests skip them for pinned reproduction runs.
inline bool fuzz_seed_pinned() {
  return std::getenv("SMASH_FUZZ_SEED") != nullptr;
}

inline std::vector<std::uint64_t> fuzz_seeds(std::uint64_t count) {
  if (const char* pinned = std::getenv("SMASH_FUZZ_SEED")) {
    return {std::strtoull(pinned, nullptr, 10)};
  }
  if (const char* iters = std::getenv("SMASH_FUZZ_ITERS")) {
    const std::uint64_t n = std::strtoull(iters, nullptr, 10);
    if (n > 0) count = n;
  }
  std::vector<std::uint64_t> seeds(count);
  for (std::uint64_t i = 0; i < count; ++i) seeds[i] = i + 1;
  return seeds;
}

}  // namespace smash::test
