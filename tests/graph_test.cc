#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace smash::graph {
namespace {

TEST(GraphBuilder, MergesDuplicateEdges) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 0, 2.0);  // same undirected edge
  builder.add_edge(1, 2, 0.5);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.0);
}

TEST(GraphBuilder, RejectsBadInput) {
  GraphBuilder builder(2);
  EXPECT_THROW(builder.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(builder.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(builder.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, WeightedDegreeAndSelfLoops) {
  GraphBuilder builder(2);
  builder.add_edge(0, 0, 2.0);  // self-loop
  builder.add_edge(0, 1, 1.0);
  const Graph g = std::move(builder).build();
  // Self-loop counts twice toward degree (modularity convention).
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 1.0);
  EXPECT_DOUBLE_EQ(g.self_loop(0), 2.0);
  EXPECT_DOUBLE_EQ(g.self_loop(1), 0.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);
}

TEST(Graph, HasEdgeAndNeighborAccess) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph g = std::move(builder).build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_THROW(g.neighbors(4), std::out_of_range);
}

TEST(Graph, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 0.0);
}

TEST(SubsetDensity, CliqueIsOne) {
  GraphBuilder builder(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  const Graph g = std::move(builder).build();
  const std::vector<std::uint32_t> all{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(subset_density(g, all), 1.0);
}

TEST(SubsetDensity, PathAndSmallSets) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const Graph g = std::move(builder).build();
  const std::vector<std::uint32_t> all{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(subset_density(g, all), 0.5);  // 3 edges / 6 pairs
  const std::vector<std::uint32_t> pair{0, 1};
  EXPECT_DOUBLE_EQ(subset_density(g, pair), 1.0);
  const std::vector<std::uint32_t> single{0};
  EXPECT_DOUBLE_EQ(subset_density(g, single), 0.0);
}

TEST(ConnectedComponents, FindsAll) {
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);
  // node 5 isolated
  const Graph g = std::move(builder).build();
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.component_of[0], comps.component_of[2]);
  EXPECT_EQ(comps.component_of[3], comps.component_of[4]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
  EXPECT_NE(comps.component_of[5], comps.component_of[0]);
  const auto groups = comps.groups();
  std::size_t total = 0;
  for (const auto& group : groups) total += group.size();
  EXPECT_EQ(total, 6u);
}

}  // namespace
}  // namespace smash::graph
