#include "durability/journal.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace smash::durability {

DurableJournal::DurableJournal(std::string dir, FsyncPolicy policy)
    : dir_(std::move(dir)), policy_(policy) {
  File::make_dirs(dir_);
  lock_ = DirLock::acquire(dir_);
}

DurableJournal::DurableJournal(std::string dir, FsyncPolicy policy,
                               WalPosition position, std::uint64_t records_logged,
                               DirLock lock)
    : dir_(std::move(dir)),
      policy_(policy),
      lock_(std::move(lock)),
      segment_(position.segment),
      records_logged_(records_logged),
      resume_offset_(position.offset),
      resume_segment_(position.offset > 0 ||
                      File::exists(dir_ + "/" + segment_file_name(position.segment))) {
  // Recovery of an absent directory (cold start) resumes at {1, 0} with
  // nothing on disk; appends still need somewhere to land.
  File::make_dirs(dir_);
  if (!lock_.held()) lock_ = DirLock::acquire(dir_);
}

bool DurableJournal::dir_has_state(const std::string& dir) {
  if (!File::exists(dir)) return false;
  for (const auto& name : File::list_dir(dir)) {
    if (parse_segment_file_name(name) || parse_checkpoint_file_name(name)) {
      return true;
    }
  }
  return false;
}

void DurableJournal::ensure_writer() {
  if (writer_) return;
  const bool creating = !resume_segment_;
  writer_ = std::make_unique<WalWriter>(
      dir_, segment_,
      resume_segment_ ? WalWriter::Mode::kResume : WalWriter::Mode::kCreate);
  resume_segment_ = false;
  // A freshly created segment's directory entry must reach stable storage
  // before any record in it is fsynced: without this a machine crash can
  // drop the whole file while its records were already acked, and recovery
  // would read the missing trailing segment as a legitimate quiet tail.
  if (creating && policy_ != FsyncPolicy::kOff) File::sync_dir(dir_, "wal");
}

bool DurableJournal::refuse_if_dead() const {
  if (!dead_) return false;
  if (crashed_) return true;  // frozen post-SimulatedCrash image (teardown)
  throw IoError("DurableJournal for " + dir_ +
                " is unusable after a prior I/O error");
}

void DurableJournal::append_payload(std::string_view payload, bool is_seal) {
  if (refuse_if_dead()) return;
  try {
    ensure_writer();
    writer_->append(payload);
    if (policy_ == FsyncPolicy::kEveryRecord ||
        (is_seal && policy_ == FsyncPolicy::kOnSeal)) {
      // Spanned only at seals: per-record fsync (kEveryRecord) would flood
      // the trace ring; the histogram still times every fsync.
      obs::Span fsync_span(is_seal ? "wal.fsync" : nullptr);
      const auto start = std::chrono::steady_clock::now();
      writer_->sync();
      if (fsync_ms_metric_ != nullptr) {
        fsync_ms_metric_->observe(std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - start)
                                      .count());
      }
    }
    ++records_logged_;
    if (records_metric_ != nullptr) {
      records_metric_->inc();
      bytes_metric_->inc(payload.size());
    }
    if (is_seal) {
      writer_->close();
      writer_.reset();
      ++segment_;
      resume_offset_ = 0;
    }
  } catch (const util::SimulatedCrash&) {
    dead_ = true;
    crashed_ = true;
    throw;
  } catch (...) {
    dead_ = true;
    throw;
  }
}

void DurableJournal::append(const stream::RequestEvent& event) {
  append_payload(encode_record(WalRecord{event}), /*is_seal=*/false);
}

void DurableJournal::append(const stream::ResolutionEvent& event) {
  append_payload(encode_record(WalRecord{event}), /*is_seal=*/false);
}

void DurableJournal::append(const stream::RedirectEvent& event) {
  append_payload(encode_record(WalRecord{event}), /*is_seal=*/false);
}

void DurableJournal::seal_epoch(stream::EpochId epoch) {
  append_payload(encode_record(WalRecord{SealMarker{epoch}}), /*is_seal=*/true);
}

void DurableJournal::write_checkpoint(CheckpointState state) {
  if (refuse_if_dead()) return;
  try {
    SMASH_SPAN("ckpt.install");
    const auto start = std::chrono::steady_clock::now();
    const WalPosition pos = position();
    state.replay_segment = pos.segment;
    state.replay_offset = pos.offset;
    state.records_logged = records_logged_;
    write_checkpoint_file(dir_, state, policy_);
    if (ckpt_install_ms_metric_ != nullptr) {
      ckpt_install_ms_metric_->observe(std::chrono::duration<double, std::milli>(
                                           std::chrono::steady_clock::now() - start)
                                           .count());
    }

    // Prune: newest two checkpoints stay; every older checkpoint goes, and
    // with them every segment below the oldest retained replay floor (no
    // retained checkpoint will ever ask recovery to read those bytes).
    std::vector<std::string> checkpoints;
    for (const auto& name : File::list_dir(dir_)) {
      if (parse_checkpoint_file_name(name)) checkpoints.push_back(name);
    }
    if (checkpoints.size() > 2) {
      for (std::size_t i = 0; i + 2 < checkpoints.size(); ++i) {
        File::remove_file(dir_ + "/" + checkpoints[i]);
      }
      checkpoints.erase(checkpoints.begin(),
                        checkpoints.end() - static_cast<std::ptrdiff_t>(2));
    }
    if (!checkpoints.empty()) {
      const auto oldest = parse_checkpoint_file_name(checkpoints.front());
      for (const auto& name : File::list_dir(dir_)) {
        const auto seq = parse_segment_file_name(name);
        if (seq && *seq < oldest->replay_segment) {
          File::remove_file(dir_ + "/" + name);
        }
      }
    }
  } catch (const util::SimulatedCrash&) {
    dead_ = true;
    crashed_ = true;
    throw;
  } catch (...) {
    dead_ = true;
    throw;
  }
}

void DurableJournal::set_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    records_metric_ = nullptr;
    bytes_metric_ = nullptr;
    fsync_ms_metric_ = nullptr;
    ckpt_install_ms_metric_ = nullptr;
    return;
  }
  records_metric_ = &registry->counter("wal.records_total", "WAL records appended");
  bytes_metric_ = &registry->counter("wal.bytes_total", "WAL payload bytes appended");
  fsync_ms_metric_ =
      &registry->latency_histogram_ms("wal.fsync_ms", "WAL fsync latency");
  ckpt_install_ms_metric_ = &registry->latency_histogram_ms(
      "ckpt.install_ms", "checkpoint build-to-installed latency");
}

WalPosition DurableJournal::position() const noexcept {
  WalPosition pos;
  pos.segment = segment_;
  pos.offset = writer_ ? writer_->offset() : resume_offset_;
  return pos;
}

}  // namespace smash::durability
