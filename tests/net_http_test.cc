#include "net/http.h"

#include <gtest/gtest.h>

namespace smash::net {
namespace {

struct UriFileCase {
  std::string path;
  std::string expected;
};

class UriFileTest : public ::testing::TestWithParam<UriFileCase> {};

TEST_P(UriFileTest, ExtractsPerPaperDefinition) {
  EXPECT_EQ(uri_file(GetParam().path), GetParam().expected);
}

// "the substring of a URI starting from the last '/' until the end before
// the question mark" (paper §III-B2).
INSTANTIATE_TEST_SUITE_P(
    Cases, UriFileTest,
    ::testing::Values(
        UriFileCase{"/images/news.php?p=1&id=2", "news.php"},
        UriFileCase{"/images/file.txt", "file.txt"},
        UriFileCase{"/", ""},
        UriFileCase{"/?x=1", ""},
        UriFileCase{"/a/b/c/setup.php", "setup.php"},
        UriFileCase{"/wp-content/uploads/sm3.php", "sm3.php"},
        UriFileCase{"login.php", "login.php"},        // no slash at all
        UriFileCase{"/dir.with.dots/", ""},           // trailing slash
        UriFileCase{"/x/y.php?q=/fake/path.html", "y.php"}));  // '?' first

TEST(UriPathOnly, StripsQuery) {
  EXPECT_EQ(uri_path_only("/a/b.php?x=1"), "/a/b.php");
  EXPECT_EQ(uri_path_only("/a/b.php"), "/a/b.php");
}

TEST(UriQuery, ExtractsAfterQuestionMark) {
  EXPECT_EQ(uri_query("/x?a=1&b=2"), "a=1&b=2");
  EXPECT_EQ(uri_query("/x"), "");
  EXPECT_EQ(uri_query("/x?"), "");
}

TEST(QueryParams, ParsesPairsInOrder) {
  const auto params = query_params("/x.php?p=16435&id=21799517&e=0");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "p");
  EXPECT_EQ(params[0].second, "16435");
  EXPECT_EQ(params[1].first, "id");
  EXPECT_EQ(params[2].first, "e");
  EXPECT_EQ(params[2].second, "0");
}

TEST(QueryParams, HandlesValuelessKeysAndEmpties) {
  const auto params = query_params("/x?flag&a=1&&b=");
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params[0].first, "flag");
  EXPECT_EQ(params[0].second, "");
  EXPECT_EQ(params[2].first, "b");
  EXPECT_EQ(params[2].second, "");
}

TEST(ParamPattern, BlanksValues) {
  // The paper's Bagle pattern: "p=[]&id=[]&e=[]".
  EXPECT_EQ(param_pattern("/news.php?p=16435&id=21799517&e=0"), "p=&id=&e=");
  EXPECT_EQ(param_pattern("/x"), "");
  EXPECT_EQ(param_pattern("/x?a=1"), "a=");
}

TEST(ParamPattern, OrderSensitive) {
  EXPECT_NE(param_pattern("/x?a=1&b=2"), param_pattern("/x?b=2&a=1"));
}

TEST(StatusHelpers, RedirectAndError) {
  EXPECT_TRUE(is_redirect_status(301));
  EXPECT_TRUE(is_redirect_status(302));
  EXPECT_TRUE(is_redirect_status(307));
  EXPECT_FALSE(is_redirect_status(200));
  EXPECT_FALSE(is_redirect_status(404));
  EXPECT_TRUE(is_error_status(404));
  EXPECT_TRUE(is_error_status(503));
  EXPECT_FALSE(is_error_status(200));
  EXPECT_FALSE(is_error_status(302));
}

TEST(MethodName, Names) {
  EXPECT_EQ(method_name(Method::kGet), "GET");
  EXPECT_EQ(method_name(Method::kPost), "POST");
  EXPECT_EQ(method_name(Method::kHead), "HEAD");
}

}  // namespace
}  // namespace smash::net
