#include "core/preshard.h"

#include <algorithm>
#include <utility>

#include "dns/domain.h"
#include "net/http.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace smash::core {

ShardPre build_shard_pre(const net::Trace& shard) {
  ShardPre out;
  const std::uint32_t num_servers = shard.servers().size();
  out.server_2lds.reserve(num_servers);
  out.delta_of_server.reserve(num_servers);

  // 2LD each raw server exactly once; delta slots in raw-server-id order,
  // mirroring AggregatedTrace::build's aggregation order.
  std::unordered_map<std::string, std::uint32_t> delta_id;
  for (std::uint32_t s = 0; s < num_servers; ++s) {
    std::string two_ld = dns::effective_2ld(shard.servers().name(s));
    const auto [it, inserted] =
        delta_id.emplace(two_ld, static_cast<std::uint32_t>(out.deltas.size()));
    if (inserted) {
      out.delta_2lds.push_back(two_ld);
      out.deltas.emplace_back();
    }
    out.delta_of_server.push_back(it->second);
    out.server_2lds.push_back(std::move(two_ld));
  }

  // One pass over the shard's requests: all per-request string parsing
  // (URI file, parameter pattern, referrer 2LD) happens here, once per
  // epoch, never again on window slides.
  std::unordered_map<std::string, std::uint32_t> file_id;
  std::unordered_map<std::string, std::uint32_t> referrer_id;
  for (const auto& req : shard.requests()) {
    ShardServerDelta& delta = out.deltas[out.delta_of_server[req.server]];
    delta.clients.insert(req.client);
    delta.days.insert(req.day);

    std::string file(net::uri_file(req.path));
    const auto [fit, file_new] = file_id.emplace(
        file, static_cast<std::uint32_t>(out.file_names.size()));
    if (file_new) out.file_names.push_back(std::move(file));
    delta.files.insert(fit->second);

    delta.user_agents.insert(req.user_agent);
    std::string pattern = net::param_pattern(req.path);
    if (!pattern.empty()) delta.param_patterns.insert(std::move(pattern));

    if (!req.referrer.empty()) {
      std::string ref_2ld = dns::effective_2ld(req.referrer);
      const auto [rit, ref_new] = referrer_id.emplace(
          ref_2ld, static_cast<std::uint32_t>(out.referrer_2lds.size()));
      if (ref_new) out.referrer_2lds.push_back(std::move(ref_2ld));
      ++delta.referrer_counts[rit->second];
    }

    ++delta.requests;
    if (net::is_error_status(req.status)) ++delta.error_requests;
  }

  for (std::uint32_t s = 0; s < num_servers; ++s) {
    ShardServerDelta& delta = out.deltas[out.delta_of_server[s]];
    for (const auto ip : shard.ips_of(s)) delta.ips.insert(ip);
  }

  for (auto& delta : out.deltas) {
    delta.clients.normalize();
    delta.ips.normalize();
    delta.days.normalize();
    delta.files.normalize();
  }
  return out;
}

WindowPre merge_shard_pres(const std::vector<ShardPreRef>& shards,
                           const SmashConfig& config) {
  WindowPre out;

  // Per-shard id remaps into the window id space.
  struct Remap {
    std::vector<std::uint32_t> client, server, ip, file, referrer;
  };
  std::vector<Remap> remaps(shards.size());

  util::Interner raw_servers;  // window hostname interner (ids only)
  util::Interner agg_servers;  // window 2LD interner -> AggregatedTrace
  util::Interner files;        // window URI-file interner -> AggregatedTrace
  // 2LD (agg) id of each window raw server id.
  std::vector<std::uint32_t> agg_of;

  // Phase 1: window client/server/ip interners by first appearance across
  // shards in epoch order — the order journal-replay window assembly
  // produces. A raw server new to the window gets its 2LD interned
  // immediately, so agg ids follow window-raw-server order exactly as in
  // AggregatedTrace::build.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const net::Trace& trace = *shards[i].trace;
    const ShardPre& pre = *shards[i].pre;
    SMASH_CHECK(pre.server_2lds.size() == trace.servers().size(),
                "merge_shard_pres: ShardPre out of date with its trace");
    Remap& remap = remaps[i];

    remap.client.reserve(trace.clients().size());
    for (std::uint32_t c = 0; c < trace.clients().size(); ++c) {
      remap.client.push_back(out.clients.intern(trace.clients().name(c)));
    }
    remap.ip.reserve(trace.ips().size());
    for (std::uint32_t p = 0; p < trace.ips().size(); ++p) {
      remap.ip.push_back(out.ips.intern(trace.ips().name(p)));
    }
    remap.server.reserve(trace.servers().size());
    for (std::uint32_t s = 0; s < trace.servers().size(); ++s) {
      const std::uint32_t before = raw_servers.size();
      const std::uint32_t w = raw_servers.intern(trace.servers().name(s));
      remap.server.push_back(w);
      if (w == before) agg_of.push_back(agg_servers.intern(pre.server_2lds[s]));
    }
  }

  // Phase 2: window file interner — concatenating the shards' request-order
  // file lists reproduces first appearance across window request order.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardPre& pre = *shards[i].pre;
    remaps[i].file.reserve(pre.file_names.size());
    for (const auto& name : pre.file_names) {
      remaps[i].file.push_back(files.intern(name));
    }
  }

  // Phase 3: referrer-only 2LDs append to the agg interner after all server
  // 2LDs, in window request order — as the batch request scan would.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardPre& pre = *shards[i].pre;
    remaps[i].referrer.reserve(pre.referrer_2lds.size());
    for (const auto& name : pre.referrer_2lds) {
      remaps[i].referrer.push_back(agg_servers.intern(name));
    }
  }

  // Phase 4: merge the per-shard deltas into window profiles. Referrer-only
  // 2LDs keep default-empty profiles, as after the batch resize.
  //
  // Parallel by interner range: each worker owns a contiguous range of
  // window 2LD (agg) ids and applies, in shard order, exactly the deltas
  // landing in its range — per-profile delta application order is
  // identical to the serial walk (only which thread performs it changes),
  // ranges are disjoint so there is no sharing, and the result is
  // byte-identical for every config.num_threads.
  std::vector<ServerProfile> profiles(agg_servers.size());
  std::uint64_t total_requests = 0;
  std::vector<std::vector<std::uint32_t>> delta_agg(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardPre& pre = *shards[i].pre;
    total_requests += shards[i].trace->num_requests();
    delta_agg[i].reserve(pre.delta_2lds.size());
    for (const auto& two_ld : pre.delta_2lds) {
      const auto agg_id = agg_servers.find(two_ld);
      SMASH_CHECK(agg_id.has_value(),
                  "merge_shard_pres: shard 2LD missing from window interner");
      delta_agg[i].push_back(*agg_id);
    }
  }

  const auto merge_agg_range = [&](std::uint32_t agg_lo, std::uint32_t agg_hi) {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      const ShardPre& pre = *shards[i].pre;
      const Remap& remap = remaps[i];
      for (std::size_t d = 0; d < pre.deltas.size(); ++d) {
        const auto agg_id = delta_agg[i][d];
        if (agg_id < agg_lo || agg_id >= agg_hi) continue;
        const ShardServerDelta& delta = pre.deltas[d];
        ServerProfile& profile = profiles[agg_id];
        for (const auto c : delta.clients) profile.clients.insert(remap.client[c]);
        for (const auto p : delta.ips) profile.ips.insert(remap.ip[p]);
        for (const auto day : delta.days) profile.days.insert(day);
        for (const auto f : delta.files) profile.files.insert(remap.file[f]);
        profile.user_agents.insert(delta.user_agents.begin(),
                                   delta.user_agents.end());
        profile.param_patterns.insert(delta.param_patterns.begin(),
                                      delta.param_patterns.end());
        for (const auto& [ref_local, count] : delta.referrer_counts) {
          profile.referrer_counts[remap.referrer[ref_local]] += count;
        }
        profile.requests += delta.requests;
        profile.error_requests += delta.error_requests;
      }
    }
    for (std::uint32_t a = agg_lo; a < agg_hi; ++a) {
      profiles[a].clients.normalize();
      profiles[a].ips.normalize();
      profiles[a].days.normalize();
      profiles[a].files.normalize();
    }
  };

  const auto num_profiles = static_cast<std::uint32_t>(profiles.size());
  const unsigned merge_threads =
      std::min<unsigned>(config.num_threads, num_profiles == 0 ? 1 : num_profiles);
  if (merge_threads <= 1) {
    merge_agg_range(0, num_profiles);
  } else {
    // parallel_for drains on the calling thread too, so size the pool one
    // short of the thread budget (mirrors core/dimensions.cc).
    util::ThreadPool pool(merge_threads - 1);
    util::parallel_for(pool, merge_threads, [&](std::size_t s) {
      merge_agg_range(
          static_cast<std::uint32_t>(std::uint64_t{num_profiles} * s / merge_threads),
          static_cast<std::uint32_t>(std::uint64_t{num_profiles} * (s + 1) /
                                     merge_threads));
    });
  }

  // Phase 5: redirects. The window's raw redirect map is last-write-wins
  // across shards in epoch order (per-shard maps already hold each shard's
  // last write); aggregation then walks raw servers in window-id order,
  // exactly as AggregatedTrace::build does.
  std::unordered_map<std::uint32_t, std::uint32_t> raw_redirects;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (const auto& [from, to] : shards[i].trace->redirects()) {
      raw_redirects[remaps[i].server[from]] = remaps[i].server[to];
    }
  }
  std::unordered_map<std::uint32_t, std::uint32_t> agg_redirects;
  for (std::uint32_t s = 0; s < raw_servers.size(); ++s) {
    const auto it = raw_redirects.find(s);
    if (it == raw_redirects.end()) continue;
    const auto from_agg = agg_of[s];
    const auto to_agg = agg_of[it->second];
    if (from_agg != to_agg) agg_redirects[from_agg] = to_agg;
  }

  const std::uint32_t num_raw_servers = raw_servers.size();
  out.pre.agg = AggregatedTrace::from_parts(
      std::move(agg_servers), std::move(files), std::move(profiles),
      std::move(agg_redirects), num_raw_servers);
  out.pre.total_requests = total_requests;
  apply_idf_filter(out.pre, config);
  return out;
}

std::uint64_t shard_pre_fingerprint(const ShardPre& pre) {
  // FNV-1a over the ordered parts; unordered sets/maps fold in as sums of
  // per-element hashes so iteration order cannot affect the result.
  std::uint64_t h = util::fnv1a("shard-pre-v1");
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  const auto mix_str = [&mix](const std::string& s) { mix(util::fnv1a(s)); };
  const auto mix_ids = [&mix](const util::IdSet& set) {
    mix(set.size());
    for (const auto id : set) mix(id);
  };

  mix(pre.server_2lds.size());
  for (const auto& s : pre.server_2lds) mix_str(s);
  mix(pre.delta_of_server.size());
  for (const auto d : pre.delta_of_server) mix(d);
  mix(pre.delta_2lds.size());
  for (const auto& s : pre.delta_2lds) mix_str(s);
  mix(pre.file_names.size());
  for (const auto& s : pre.file_names) mix_str(s);
  mix(pre.referrer_2lds.size());
  for (const auto& s : pre.referrer_2lds) mix_str(s);

  mix(pre.deltas.size());
  for (const auto& delta : pre.deltas) {
    mix_ids(delta.clients);
    mix_ids(delta.ips);
    mix_ids(delta.days);
    mix_ids(delta.files);
    mix(delta.requests);
    mix(delta.error_requests);
    std::uint64_t unordered = 0;
    for (const auto& ua : delta.user_agents) unordered += util::fnv1a(ua);
    mix(unordered);
    unordered = 0;
    for (const auto& p : delta.param_patterns) unordered += util::fnv1a(p);
    mix(unordered);
    unordered = 0;
    for (const auto& [ref, count] : delta.referrer_counts) {
      unordered += util::fnv1a("ref") ^ (static_cast<std::uint64_t>(ref) << 32 | count);
    }
    mix(unordered);
  }
  return h;
}

}  // namespace smash::core
