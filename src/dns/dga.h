// Domain/filename generators used by the synthetic workloads.
//
// The paper's case studies show three naming regimes we must be able to
// synthesize: (i) DGA-style sibling domains differing in a few characters
// (Zeus: 4k0t1NNm.cz.cc, Table X); (ii) unrelated compromised-site domains
// (Bagle download tier, Table VII); (iii) obfuscated long URI filenames
// that share a character distribution (Fig. 4 / Appendix B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace smash::dns {

// Zeus-style DGA: fixed scaffold with a small varying infix, all under one
// free zone. Example family (seeded): "4k0t1", {11,22,...}, "m", "cz.cc".
std::vector<std::string> zeus_style_family(util::Rng& rng, std::size_t count,
                                           std::string_view zone = "cz.cc");

// Random pronounceable-ish benign-looking domain, e.g. "beachrugby.com".
std::string random_word_domain(util::Rng& rng, std::string_view tld = "com");

// Random alphanumeric domain of the given label length.
std::string random_alnum_domain(util::Rng& rng, std::size_t label_len,
                                std::string_view tld = "com");

// Random IPv4 dotted quad (avoids reserved 0/255 octets in first position).
std::string random_ipv4(util::Rng& rng);

// Obfuscated filename family: `count` long filenames (>= min_len chars, all
// drawn from one per-family alphabet subset) that pairwise exceed 0.8
// character-frequency cosine similarity but are not equal — exercising the
// long-filename branch of URI-file similarity (paper eqs. 4-6).
std::vector<std::string> obfuscated_filename_family(util::Rng& rng,
                                                    std::size_t count,
                                                    std::size_t min_len = 30);

// A pool of IP addresses shared by fast-fluxing domains. Each domain draws
// `per_domain` addresses from the pool, so sibling domains overlap heavily
// in their IP sets (paper eq. 8's signal).
class FluxIpPool {
 public:
  FluxIpPool(util::Rng rng, std::size_t pool_size);

  // IPs for the next domain; consecutive calls overlap since they draw from
  // the same small pool.
  std::vector<std::string> draw(std::size_t per_domain);

  const std::vector<std::string>& pool() const noexcept { return pool_; }

 private:
  util::Rng rng_;
  std::vector<std::string> pool_;
};

}  // namespace smash::dns
