#include "core/delta_mine.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

#include "graph/louvain.h"
#include "graph/similarity_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace smash::core {

namespace {

constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();

struct EdgeOrder {
  bool operator()(const graph::Edge& x, const graph::Edge& y) const noexcept {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  }
};

bool same_edge(const graph::Edge& x, const graph::Edge& y) noexcept {
  return x.u == y.u && x.v == y.v && x.weight == y.weight;
}

// Ashes (size >= 2 communities + densities) from a precomputed partition —
// the warm-start analogue of the louvain_refined tail the full path runs
// (extract_canonical_ashes).
DimensionAshes ashes_from_partition(Dimension dimension, const graph::Graph& g,
                                    const graph::LouvainResult& partition) {
  DimensionAshes out;
  out.dimension = dimension;
  out.graph_edges = g.num_edges();
  out.modularity = partition.modularity;
  out.louvain_stats = partition.stats;
  out.ash_of.assign(g.num_nodes(), -1);
  for (auto& group : partition.groups()) {
    if (group.size() < 2) continue;
    Ash ash;
    ash.members = std::move(group);
    ash.density = graph::subset_density(g, ash.members);
    const auto ash_index = static_cast<std::int32_t>(out.ashes.size());
    for (auto member : ash.members) out.ash_of[member] = ash_index;
    out.ashes.push_back(std::move(ash));
  }
  return out;
}

}  // namespace

void DeltaMiner::reset() {
  valid_ = false;
  prev_names_.clear();
  dims_.clear();
}

std::vector<DimensionAshes> DeltaMiner::mine(
    const PreprocessResult& pre, const whois::Registry& registry,
    const util::Interner& window_clients, const util::Interner& window_ips,
    const WindowDelta& delta, const SmashConfig& config, DeltaStats& stats) {
  const int dimensions =
      config.enable_param_dimension ? kNumDimensions + 1 : kNumDimensions;
  stats = DeltaStats{};
  stats.enabled = true;
  stats.epochs_added = delta.epochs_added;
  stats.epochs_evicted = delta.epochs_evicted;
  const bool have_state = valid_ && !delta.unknown &&
                          dims_.size() == static_cast<std::size_t>(dimensions);
  stats.attempted = have_state;

  const auto canon = canonical_mining_order(pre);
  const std::size_t n = canon.size();
  std::vector<std::string_view> cur_names;
  cur_names.reserve(n);
  for (const auto k : canon) {
    cur_names.push_back(pre.agg.server_name(pre.kept[k]));
  }

  // prev <-> cur canonical index maps: one two-pointer pass over the two
  // name-sorted orders. Both maps are monotonic, which is what keeps the
  // carried edge lists sorted after remapping.
  std::vector<std::uint32_t> prev_of_cur(n, kNone);
  std::vector<std::uint32_t> cur_of_prev(prev_names_.size(), kNone);
  std::size_t matched = 0;
  if (have_state) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < n && j < prev_names_.size()) {
      const std::string_view prev_name = prev_names_[j];
      if (cur_names[i] < prev_name) {
        ++i;
      } else if (prev_name < cur_names[i]) {
        ++j;
      } else {
        prev_of_cur[i] = static_cast<std::uint32_t>(j);
        cur_of_prev[j] = static_cast<std::uint32_t>(i);
        ++matched;
        ++i;
        ++j;
      }
    }
  }
  const bool same_node_set =
      have_state && matched == n && prev_names_.size() == n;

  const DimensionKeyNameSources sources{&window_clients, &window_ips};
  const auto dim_configs =
      per_dimension_mining_configs(pre, registry, config, dimensions);

  std::vector<DimensionAshes> out(dimensions);
  std::vector<DimCache> staged(dimensions);
  std::vector<DeltaStats> dim_stats(dimensions);
  auto mine_dim = [&](std::size_t d) {
    out[d] = mine_one(static_cast<Dimension>(d), pre, registry, dim_configs[d],
                      canon, cur_names, sources, delta, have_state,
                      same_node_set, prev_of_cur, cur_of_prev, staged[d],
                      dim_stats[d]);
  };
  if (config.num_threads > 1) {
    // Same fan-out shape as mine_all_dimensions (each dimension reads
    // shared state and writes only its own slots).
    util::ThreadPool pool(std::min(config.num_threads - 1,
                                   static_cast<unsigned>(dimensions - 1)));
    util::parallel_for(pool, static_cast<std::size_t>(dimensions), mine_dim);
  } else {
    for (int d = 0; d < dimensions; ++d) mine_dim(static_cast<std::size_t>(d));
  }

  for (const auto& ds : dim_stats) {
    stats.dims_delta += ds.dims_delta;
    stats.dims_full += ds.dims_full;
    stats.dims_partition_reused += ds.dims_partition_reused;
    stats.changed_items += ds.changed_items;
    stats.total_items += ds.total_items;
    stats.probed_items += ds.probed_items;
    stats.rescored_pairs += ds.rescored_pairs;
    stats.reused_pairs += ds.reused_pairs;
    stats.repaired_nodes += ds.repaired_nodes;
    stats.repair_sweeps += ds.repair_sweeps;
    stats.fallback_no_state += ds.fallback_no_state;
    stats.fallback_changed_fraction += ds.fallback_changed_fraction;
    stats.fallback_cap_change += ds.fallback_cap_change;
    stats.fallback_budget += ds.fallback_budget;
  }

  // Two-phase commit: nothing above mutated the live cache, so an exception
  // in any dimension leaves the previous state intact.
  dims_ = std::move(staged);
  prev_names_.assign(cur_names.begin(), cur_names.end());
  valid_ = true;
  return out;
}

DimensionAshes DeltaMiner::mine_one(
    Dimension dimension, const PreprocessResult& pre,
    const whois::Registry& registry, const SmashConfig& config,
    const std::vector<std::uint32_t>& canon,
    const std::vector<std::string_view>& cur_names,
    const DimensionKeyNameSources& sources, const WindowDelta& delta,
    bool have_state, bool same_node_set,
    const std::vector<std::uint32_t>& prev_of_cur,
    const std::vector<std::uint32_t>& cur_of_prev, DimCache& staged,
    DeltaStats& stats) {
  SMASH_SPAN(dimension_mine_span_name(dimension));
  const auto start = std::chrono::steady_clock::now();
  auto finish = [&](DimensionAshes ashes) {
    if (config.metrics != nullptr) {
      config.metrics
          ->latency_histogram_ms(dimension_mine_histogram_name(dimension))
          .observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    }
    return ashes;
  };

  auto input = build_dimension_join_input(
      dimension, pre, registry, config, canon,
      dimension_join_threads(dimension, config), &sources);
  const std::size_t n = input.canon_to_kept.size();
  stats.total_items += n;
  util::Interner& stable = stable_[static_cast<int>(dimension)];
  const DimCache* prev =
      have_state && dims_[static_cast<int>(dimension)].valid
          ? &dims_[static_cast<int>(dimension)]
          : nullptr;

  auto translate = [&](std::size_t c) {
    std::vector<std::uint32_t> ids;
    const auto& set = input.key_sets[c];
    ids.reserve(set.size());
    for (const auto k : set) {
      if (k >= input.key_names.size()) {
        throw std::logic_error("delta mine: key id outside the name table");
      }
      ids.push_back(stable.intern(input.key_names[k]));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  // The bounded-memory sharded join has no delta form (and its pass
  // structure is part of the budget promise), so a configured budget runs
  // the stock full path and skips cache maintenance entirely.
  if (config.join_memory_budget_bytes > 0) {
    stats.fallback_budget += 1;
    stats.dims_full += 1;
    staged.valid = false;
    return finish(mine_joined_dimension(input, config));
  }

  // Postings length of every window key, and the stable ids of the keys the
  // cap would skip. A carried pair's count is a sum over *eligible* shared
  // keys, so the delta path is only sound while this set is unchanged.
  std::vector<std::uint32_t> key_len(input.key_names.size(), 0);
  for (const auto& set : input.key_sets) {
    for (const auto k : set) {
      if (k >= key_len.size()) {
        throw std::logic_error("delta mine: key id outside the name table");
      }
      ++key_len[k];
    }
  }
  std::vector<std::uint32_t> over_cap;
  for (std::uint32_t k = 0; k < key_len.size(); ++k) {
    if (key_len[k] > input.postings_cap) {
      over_cap.push_back(stable.intern(input.key_names[k]));
    }
  }
  std::sort(over_cap.begin(), over_cap.end());

  auto full_mine_seeded = [&]() {
    stats.dims_full += 1;
    staged.skipped_keys = std::move(over_cap);
    DimensionAshes kept = mine_joined_dimension(input, config, &staged.edges,
                                                &staged.canonical);
    staged.valid = true;
    return finish(std::move(kept));
  };

  if (prev == nullptr) {
    stats.fallback_no_state += 1;
    staged.stable_keys.resize(n);
    for (std::size_t c = 0; c < n; ++c) staged.stable_keys[c] = translate(c);
    return full_mine_seeded();
  }
  if (over_cap != prev->skipped_keys) {
    stats.fallback_cap_change += 1;
    staged.stable_keys.resize(n);
    for (std::size_t c = 0; c < n; ++c) staged.stable_keys[c] = translate(c);
    return full_mine_seeded();
  }

  // Change detection. Profile-keyed dimensions can trust the changed-2LD
  // hint (see WindowDelta); the file and whois dimensions always diff.
  const bool hint_ok = dimension == Dimension::kClient ||
                       dimension == Dimension::kIp ||
                       dimension == Dimension::kParam;
  std::vector<char> changed(n, 0);
  std::vector<std::uint32_t> probe;
  staged.stable_keys.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    const auto p = prev_of_cur[c];
    if (p == kNone) {
      changed[c] = 1;
      probe.push_back(static_cast<std::uint32_t>(c));
      staged.stable_keys[c] = translate(c);
      continue;
    }
    if (hint_ok && !std::binary_search(delta.changed_2lds.begin(),
                                       delta.changed_2lds.end(),
                                       cur_names[c])) {
      staged.stable_keys[c] = prev->stable_keys[p];
      continue;
    }
    auto ids = translate(c);
    if (ids != prev->stable_keys[p]) {
      changed[c] = 1;
      probe.push_back(static_cast<std::uint32_t>(c));
    }
    staged.stable_keys[c] = std::move(ids);
  }
  stats.changed_items += probe.size();

  if (static_cast<double>(probe.size()) >
      config.delta_max_changed_fraction * static_cast<double>(n)) {
    stats.fallback_changed_fraction += 1;
    return full_mine_seeded();
  }

  stats.dims_delta += 1;
  stats.probed_items += probe.size();

  graph::JoinOptions join_options;
  join_options.max_postings_length = input.postings_cap;
  graph::JoinStats join_stats;
  obs::Span delta_join_span("mine.delta_join",
                            dimension_name(dimension).data());
  const auto pairs = graph::cooccurrence_join_delta(
      input.key_sets, probe, input.min_shared, join_options,
      input.join_threads, &join_stats);
  delta_join_span.finish();
  stats.rescored_pairs += pairs.size();
  const auto probed_edges = weight_dimension_pairs(input, pairs);

  // Carry the cached edges whose endpoints are both present and unchanged:
  // their shared-key counts, set sizes, and therefore weights are identical
  // by construction (the over-cap key set was just checked). Pairs with a
  // changed endpoint were all re-emitted by the probe above, so the two
  // lists are disjoint and their merge is exactly the full join's
  // thresholded edge list.
  std::vector<graph::Edge> carried;
  carried.reserve(prev->edges.size());
  for (const auto& e : prev->edges) {
    const auto cu = cur_of_prev[e.u];
    const auto cv = cur_of_prev[e.v];
    if (cu == kNone || cv == kNone || changed[cu] != 0 || changed[cv] != 0) {
      continue;
    }
    carried.push_back({cu, cv, e.weight});
  }
  stats.reused_pairs += carried.size();

  std::vector<graph::Edge> merged;
  merged.reserve(carried.size() + probed_edges.size());
  std::merge(carried.begin(), carried.end(), probed_edges.begin(),
             probed_edges.end(), std::back_inserter(merged), EdgeOrder{});

  staged.skipped_keys = std::move(over_cap);
  staged.edges = std::move(merged);

  const bool same_graph =
      same_node_set && staged.edges.size() == prev->edges.size() &&
      std::equal(staged.edges.begin(), staged.edges.end(), prev->edges.begin(),
                 same_edge);

  obs::Span repair_span("louvain.repair", dimension_name(dimension).data());
  if (same_graph) {
    // Identical graph -> louvain_refined is deterministic -> the cached
    // partition (and its stats) is bitwise what a re-run would produce.
    stats.dims_partition_reused += 1;
    staged.canonical = prev->canonical;
  } else if (config.delta_approximate_louvain) {
    // Opt-in approximate mode: repair the previous partition around the
    // changed nodes instead of re-partitioning (see louvain_warm_start).
    graph::GraphBuilder builder(static_cast<std::uint32_t>(n));
    for (const auto& e : staged.edges) builder.add_edge(e.u, e.v, e.weight);
    const graph::Graph g = std::move(builder).build();
    // Seed: previous community where the node existed, a fresh singleton
    // label otherwise. ash_of == -1 always means "singleton community"
    // (only size >= 2 groups become ashes), so this reconstruction of the
    // cached partition is exact.
    const auto num_prev_ashes =
        static_cast<std::uint32_t>(prev->canonical.ashes.size());
    std::vector<std::uint32_t> seed(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      const auto p = prev_of_cur[c];
      const std::int32_t a =
          p == kNone ? -1 : prev->canonical.ash_of[p];
      seed[c] = a >= 0 ? static_cast<std::uint32_t>(a) : num_prev_ashes + c;
    }
    graph::LouvainOptions louvain_options = config.louvain;
    if (louvain_options.num_threads == 0) {
      louvain_options.num_threads = std::max(1u, config.num_threads);
    }
    const auto warm = graph::louvain_warm_start(
        g, seed, probe, config.delta_max_changed_fraction, louvain_options);
    stats.repaired_nodes += warm.repaired_nodes;
    stats.repair_sweeps += warm.repair_sweeps;
    staged.canonical = ashes_from_partition(dimension, g, warm.result);
  } else {
    staged.canonical = extract_canonical_ashes(input, staged.edges, config);
  }
  repair_span.finish();

  staged.canonical.join_stats = join_stats;
  staged.valid = true;
  DimensionAshes canonical_copy = staged.canonical;
  return finish(
      remap_ashes_to_kept(std::move(canonical_copy), input.canon_to_kept));
}

}  // namespace smash::core
