// The Trace is the unit of input to SMASH: all HTTP requests observed at
// the network edge over one collection window (one day, or one week for
// Data2012week), plus the hostname -> IP resolutions observed in the same
// window. Clients, server hostnames and IP addresses are interned to dense
// ids; analysis code never touches strings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "util/id_set.h"
#include "util/interner.h"

namespace smash::net {

class Trace {
 public:
  // --- construction --------------------------------------------------------
  std::uint32_t intern_client(std::string_view name) { return clients_.intern(name); }
  std::uint32_t intern_server(std::string_view host) { return servers_.intern(host); }
  std::uint32_t intern_ip(std::string_view ip) { return ips_.intern(ip); }

  void add_request(HttpRequest req) {
    requests_.push_back(std::move(req));
    if (journal_enabled_) {
      journal_.push_back({JournalEntry::Kind::kRequest,
                          static_cast<std::uint32_t>(requests_.size() - 1)});
    }
    finalized_ = false;
  }

  // Record that `server` resolved to `ip` during the window.
  void add_resolution(std::uint32_t server, std::uint32_t ip) {
    resolutions_[server].insert(ip);
    if (journal_enabled_) {
      resolution_log_.emplace_back(server, ip);
      journal_.push_back({JournalEntry::Kind::kResolution,
                          static_cast<std::uint32_t>(resolution_log_.size() - 1)});
    }
    finalized_ = false;
  }

  // Record a redirect edge: a request to `from` returned Location: `to`.
  void add_redirect(std::uint32_t from, std::uint32_t to) {
    redirects_[from] = to;
    if (journal_enabled_) {
      redirect_log_.emplace_back(from, to);
      journal_.push_back({JournalEntry::Kind::kRedirect,
                          static_cast<std::uint32_t>(redirect_log_.size() - 1)});
    }
    finalized_ = false;
  }

  // Arrival-order journal. When enabled (call before the first add), every
  // add_request/add_resolution/add_redirect is recorded so merge_from can
  // replay this trace's events into another trace in the exact order they
  // arrived. Interner ids are assigned by first appearance, so journal
  // replay makes a merged trace byte-identical to one built from the same
  // event stream directly — the property the streaming engine's
  // stream/batch equivalence rests on.
  void enable_journal() { journal_enabled_ = true; }
  bool journal_enabled() const noexcept { return journal_enabled_; }

  // Appends every event of `other` onto this trace, interning names anew.
  // If `other` has a journal, events replay in original arrival order;
  // otherwise requests replay in order, then resolutions, then redirects.
  // Leaves this trace un-finalized; call finalize() when done merging.
  void merge_from(const Trace& other);

  // Must be called after all adds and before analysis. Safe to call again
  // after further adds or merges (re-finalizable): derived state —
  // num_days, resolution-set normalization — is recomputed from scratch.
  void finalize();

  // --- accessors ------------------------------------------------------------
  const std::vector<HttpRequest>& requests() const noexcept { return requests_; }
  const util::Interner& clients() const noexcept { return clients_; }
  const util::Interner& servers() const noexcept { return servers_; }
  const util::Interner& ips() const noexcept { return ips_; }

  std::uint32_t num_clients() const noexcept { return clients_.size(); }
  std::uint32_t num_servers() const noexcept { return servers_.size(); }
  std::size_t num_requests() const noexcept { return requests_.size(); }
  std::uint32_t num_days() const noexcept { return num_days_; }

  // IP set a server resolved to (empty set if never resolved).
  const util::IdSet& ips_of(std::uint32_t server) const;

  // Redirect target of `server`, or nullopt-ish: returns true and sets `to`.
  bool redirect_target(std::uint32_t server, std::uint32_t& to) const;

  const std::unordered_map<std::uint32_t, std::uint32_t>& redirects() const noexcept {
    return redirects_;
  }

  // Number of distinct URI files across all requests (Table I row).
  std::size_t count_distinct_uri_files() const;

  // --- (de)serialization -----------------------------------------------------
  // Tab-separated, one request per line:
  //   REQ <client> <host> <day> <method> <status> <path> <user_agent> <referrer>
  //   RES <host> <ip>
  //   RED <host> <to_host>
  // User-agent/referrer use "-" for empty. Paths must not contain tabs.
  void write_tsv(const std::string& file_path) const;
  static Trace read_tsv(const std::string& file_path);

  // Binary journal-order event serialization (durability checkpoints).
  // Unlike the TSV form, this replays the exact arrival order, so the
  // deserialized trace interns ids identically to the original — the
  // byte-identity guarantee of recovery rests on it. Requires an enabled
  // journal; appends to `out`.
  void serialize_events(std::string& out) const;
  // Inverse: a journal-enabled, un-finalized trace (callers seal or
  // finalize as appropriate). Throws std::runtime_error on malformed input.
  static Trace deserialize_events(std::string_view bytes);

 private:
  struct JournalEntry {
    enum class Kind : std::uint8_t { kRequest, kResolution, kRedirect };
    Kind kind;
    std::uint32_t index;  // into requests_ / resolution_log_ / redirect_log_
  };

  util::Interner clients_;
  util::Interner servers_;
  util::Interner ips_;
  std::vector<HttpRequest> requests_;
  std::unordered_map<std::uint32_t, util::IdSet> resolutions_;
  std::unordered_map<std::uint32_t, std::uint32_t> redirects_;
  bool journal_enabled_ = false;
  std::vector<JournalEntry> journal_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> resolution_log_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> redirect_log_;
  std::uint32_t num_days_ = 1;
  bool finalized_ = false;
};

// A view selecting the requests of a single day from a multi-day trace;
// used by the Data2012week experiments (Tables V/VI, Fig. 7).
Trace slice_day(const Trace& trace, std::uint32_t day);

}  // namespace smash::net
