// Differential crash-recovery matrix: for every combination of mining
// thread count {1, 4}, fsync policy {off, on_seal, every_record}, and crash
// point {mid-epoch event write, epoch-seal write, mid-checkpoint install},
// a durable engine is driven into a simulated crash (util::FailPoint ->
// util::SimulatedCrash), recovered with StreamEngine::recover(), fed the
// rest of the schedule, and its final snapshot compared field-by-field
// (tests/stream_fuzz_helpers.h) against an engine that never crashed.
//
// The guarantee under test is the tentpole of the durability layer: a
// recovered engine's subsequent DetectionSnapshots are byte-identical to an
// uninterrupted run's — recovery never invents, drops, or reorders state.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "durability/file.h"
#include "stream/engine.h"
#include "stream_fuzz_helpers.h"
#include "synth/stream_gen.h"
#include "test_helpers.h"
#include "util/failpoint.h"
#include "whois/whois.h"

namespace smash {
namespace {

using util::FailAction;
using util::FailPoint;
using util::SimulatedCrash;

struct CrashPoint {
  const char* name;
  const char* site;  // failpoint site the crash is injected at
  FailAction action;
  std::uint64_t skip;  // hits to let through before firing
  // Whether the record the crash interrupted survives into the recovered
  // state. A "wal." crash interrupts the record being written (crash fires
  // before the bytes land; a short write leaves a torn record that replay
  // truncates), so the in-flight event must be re-fed after recovery. A
  // "ckpt." crash fires after the closing event was journaled AND ingested
  // (checkpoints run in the close epilogue), so re-feeding would double it.
  bool refeed_crashed_event;
};

// The skip counts pick a spot deep enough into the schedule that real
// window state (multiple sealed epochs, often a checkpoint) exists at the
// crash. "wal.write" counts every record append; "wal.fsync" under kOnSeal
// counts epoch seals; "ckpt.rename" counts checkpoint installs.
const CrashPoint kCrashPoints[] = {
    {"mid_epoch", "wal.write", {FailAction::Kind::kCrash, 0}, 120, true},
    {"torn_write", "wal.write", {FailAction::Kind::kShortWrite, 6}, 120, true},
    // Only meaningful under kOnSeal, where every "wal.fsync" hit IS a seal:
    // the seal record is on disk, the sealing event was never journaled.
    {"on_seal", "wal.fsync", {FailAction::Kind::kCrash, 0}, 1, true},
    {"mid_checkpoint", "ckpt.rename", {FailAction::Kind::kCrash, 0}, 1, false},
};

stream::StreamConfig matrix_config(const std::string& dir, unsigned threads,
                                   stream::WalFsync policy) {
  stream::StreamConfig config;
  config.epoch_seconds = test::kFuzzEpochSeconds;
  config.window_epochs = 4;
  config.drop_late_events = false;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = threads;
  config.durability_dir = dir;
  config.fsync_policy = policy;
  config.checkpoint_every_epochs = 2;
  // The durable (crashing) and recovered engines mine incrementally; the
  // uninterrupted reference below strips this along with durability_dir.
  // Every matrix cell thus proves recovery correctness AND the
  // incremental-vs-full identity in one comparison — including that a
  // recovered engine's empty delta caches transparently full-mine first.
  config.incremental_mining = true;
  return config;
}

class RecoveryMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoint::disarm_all(); }
  void TearDown() override { FailPoint::disarm_all(); }
};

TEST_F(RecoveryMatrixTest, RecoveredSnapshotsMatchUninterruptedRun) {
  const whois::Registry registry;
  std::size_t crashes_fired = 0;
  std::size_t verdict_runs = 0;

  for (const unsigned threads : {1u, 4u}) {
    for (const auto policy :
         {stream::WalFsync::kOff, stream::WalFsync::kOnSeal,
          stream::WalFsync::kEveryRecord}) {
      for (const CrashPoint& point : kCrashPoints) {
        const std::string label =
            std::string(point.name) + " threads=" + std::to_string(threads) +
            " policy=" + std::to_string(static_cast<int>(policy));
        SCOPED_TRACE(label);

        // One deterministic schedule per cell, so a failure names its cell.
        const std::uint64_t seed =
            1000 + threads * 100 + static_cast<std::uint64_t>(policy) * 10 +
            static_cast<std::uint64_t>(&point - kCrashPoints);
        const auto events = test::random_schedule(seed);

        const std::string dir =
            (std::filesystem::temp_directory_path() /
             ("smash_recovery_matrix_" + std::to_string(seed)))
                .string();
        std::filesystem::remove_all(dir);
        const auto config = matrix_config(dir, threads, policy);

        // The seal-fsync cell is only well-defined under kOnSeal: kOff
        // never fsyncs the WAL, and under kEveryRecord hit N may be an
        // event append rather than a seal.
        if (std::string(point.site) == "wal.fsync" &&
            policy != stream::WalFsync::kOnSeal) {
          continue;
        }

        // Drive the durable engine into the crash.
        std::size_t crashed_at = events.size();
        {
          stream::StreamEngine engine(config, registry);
          FailPoint::Spec spec;
          spec.action = point.action;
          spec.skip = point.skip;
          FailPoint::arm(point.site, spec);
          for (std::size_t i = 0; i < events.size(); ++i) {
            try {
              synth::ingest_event(engine, events[i]);
            } catch (const SimulatedCrash&) {
              crashed_at = i;
              break;
            }
          }
          FailPoint::disarm_all();
        }
        if (crashed_at < events.size()) ++crashes_fired;

        // Recover and finish the schedule. A run that never crashed
        // resumes cleanly from its complete WAL.
        auto recovered = stream::StreamEngine::recover(config, registry);
        EXPECT_TRUE(recovered->recovery_stats().recovered);
        std::size_t resume_at = crashed_at;
        if (crashed_at < events.size() && !point.refeed_crashed_event) {
          resume_at = crashed_at + 1;
        }
        for (std::size_t i = resume_at; i < events.size(); ++i) {
          synth::ingest_event(*recovered, events[i]);
        }
        recovered->finish();

        // The engine that never crashed.
        stream::StreamEngine reference(
            [&] {
              auto c = config;
              c.durability_dir.clear();
              c.incremental_mining = false;  // full-mine oracle
              return c;
            }(),
            registry);
        for (const auto& event : events) synth::ingest_event(reference, event);
        reference.finish();

        const auto recovered_snap = recovered->snapshot();
        const auto reference_snap = reference.snapshot();
        ASSERT_NE(recovered_snap, nullptr);
        ASSERT_NE(reference_snap, nullptr);
        test::expect_identical_snapshots(*recovered_snap, *reference_snap);
        EXPECT_EQ(recovered->epochs_closed_total(),
                  reference.epochs_closed_total());
        if (recovered_snap->num_malicious_servers() > 0) ++verdict_runs;

        std::filesystem::remove_all(dir);
      }
    }
  }
  // The matrix must exercise real crashes and real verdicts, not vacuous
  // cells.
  EXPECT_GT(crashes_fired, 0u);
  EXPECT_GT(verdict_runs, 0u);
}

// Async mining on the recovered engine: recovery itself republishes
// synchronously, and subsequent closes mine on the dedicated thread; the
// final snapshot still matches the uninterrupted sync run.
TEST_F(RecoveryMatrixTest, AsyncRecoveredEngineConvergesToSameFinalSnapshot) {
  const whois::Registry registry;
  const auto events = test::random_schedule(77);
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "smash_recovery_matrix_async")
                              .string();
  std::filesystem::remove_all(dir);
  auto config = matrix_config(dir, 1, stream::WalFsync::kOnSeal);
  const std::size_t cut = events.size() / 2;
  {
    stream::StreamEngine engine(config, registry);
    for (std::size_t i = 0; i < cut; ++i) synth::ingest_event(engine, events[i]);
  }
  config.async_mining = true;
  auto recovered = stream::StreamEngine::recover(config, registry);
  for (std::size_t i = cut; i < events.size(); ++i) {
    synth::ingest_event(*recovered, events[i]);
  }
  recovered->finish();

  auto reference_config = config;
  reference_config.durability_dir.clear();
  reference_config.async_mining = false;
  reference_config.incremental_mining = false;  // full-mine oracle
  stream::StreamEngine reference(reference_config, registry);
  for (const auto& event : events) synth::ingest_event(reference, event);
  reference.finish();

  const auto recovered_snap = recovered->snapshot();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(recovered_snap, nullptr);
  ASSERT_NE(reference_snap, nullptr);
  test::expect_identical_snapshots(*recovered_snap, *reference_snap);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smash
