#include "core/evaluation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace smash::core {

namespace {

// "Dead or erroring" per the suspicious-campaign rule: the liveness probe
// failed, or most observed requests returned errors.
bool server_looks_dead(const ids::GroundTruth& truth, const std::string& name,
                       const ServerProfile& profile) {
  if (truth.is_dead(name)) return true;
  return profile.requests > 0 && profile.error_requests * 2 >= profile.requests;
}

}  // namespace

Evaluator::Evaluator(const net::Trace& trace, const ids::SignatureEngine& signatures,
                     const ids::Blacklist& blacklist, const ids::GroundTruth& truth)
    : blacklist_(blacklist), truth_(truth) {
  labels2012_ = signatures.label(trace, ids::Vintage::k2012);
  labels2013_ = signatures.label(trace, ids::Vintage::k2013);
}

bool Evaluator::ids2012_labeled(const std::string& server_2ld) const {
  return labels2012_.labeled(server_2ld);
}

bool Evaluator::ids2013_labeled(const std::string& server_2ld) const {
  return labels2013_.labeled(server_2ld) && !labels2012_.labeled(server_2ld);
}

bool Evaluator::blacklist_confirmed(const std::string& server_2ld) const {
  return blacklist_.confirmed(server_2ld);
}

CampaignVerdict Evaluator::classify_campaign(const SmashResult& result,
                                             const Campaign& campaign) const {
  int n2012 = 0;
  int n2013 = 0;
  int nblacklist = 0;
  int ndead = 0;
  const int total = static_cast<int>(campaign.servers.size());
  for (auto member : campaign.servers) {
    const auto& name = result.server_name(member);
    if (ids2012_labeled(name)) ++n2012;
    if (ids2013_labeled(name)) ++n2013;
    if (blacklist_confirmed(name)) ++nblacklist;
    if (server_looks_dead(truth_, name, result.server_profile(member))) ++ndead;
  }
  if (n2012 == total) return CampaignVerdict::kIds2012Total;
  if (n2012 + n2013 == total && n2013 > 0) return CampaignVerdict::kIds2013Total;
  if (n2012 > 0) return CampaignVerdict::kIds2012Partial;
  if (n2013 > 0) return CampaignVerdict::kIds2013Partial;
  if (nblacklist > 0) return CampaignVerdict::kBlacklistPartial;
  if (2 * ndead >= total) return CampaignVerdict::kSuspicious;
  return CampaignVerdict::kFalsePositive;
}

ServerVerdict Evaluator::classify_server(const SmashResult& result,
                                         std::uint32_t kept_idx,
                                         const Campaign& campaign,
                                         CampaignVerdict campaign_verdict) const {
  const auto& name = result.server_name(kept_idx);
  if (ids2012_labeled(name)) return ServerVerdict::kIds2012;
  if (ids2013_labeled(name)) return ServerVerdict::kIds2013;
  if (blacklist_confirmed(name)) return ServerVerdict::kBlacklist;
  if (campaign_verdict == CampaignVerdict::kSuspicious) {
    return ServerVerdict::kSuspicious;
  }

  // "New Servers" (§V-A2): unconfirmed members of a campaign that has at
  // least one IDS/blacklist-confirmed member, provided the server shares a
  // requested URI file, User-Agent, or parameter pattern with some other
  // member — i.e. it sits in a pattern-coherent part of a confirmed herd.
  // (The paper compares against confirmed servers' patterns and counts the
  // coherent remainder of partially-confirmed campaigns — e.g. the whole
  // Bagle download tier, which shares patterns only among itself.)
  bool campaign_confirmed = false;
  for (auto other : campaign.servers) {
    const auto& other_name = result.server_name(other);
    if (ids2012_labeled(other_name) || labels2013_.labeled(other_name) ||
        blacklist_confirmed(other_name)) {
      campaign_confirmed = true;
      break;
    }
  }
  if (!campaign_confirmed) return ServerVerdict::kFalsePositive;

  const auto& profile = result.server_profile(kept_idx);
  for (auto other : campaign.servers) {
    if (other == kept_idx) continue;
    const auto& other_profile = result.server_profile(other);
    if (intersection_size(profile.files, other_profile.files) > 0) {
      return ServerVerdict::kNewServer;
    }
    for (const auto& ua : profile.user_agents) {
      if (other_profile.user_agents.count(ua)) return ServerVerdict::kNewServer;
    }
    for (const auto& pattern : profile.param_patterns) {
      if (other_profile.param_patterns.count(pattern)) {
        return ServerVerdict::kNewServer;
      }
    }
  }
  return ServerVerdict::kFalsePositive;
}

EvaluationResult Evaluator::evaluate(const SmashResult& result,
                                     bool single_client) const {
  EvaluationResult out;
  std::unordered_set<std::string> detected_names;

  for (const auto& campaign : result.campaigns) {
    if (campaign.single_client() != single_client) continue;
    CampaignEvaluation eval;
    eval.campaign = &campaign;
    eval.verdict = classify_campaign(result, campaign);

    int noise_members = 0;
    for (auto member : campaign.servers) {
      if (truth_.server_is_noise(result.server_name(member))) ++noise_members;
    }
    eval.noisy = 2 * noise_members > static_cast<int>(campaign.servers.size());

    ++out.campaign_counts.smash;
    switch (eval.verdict) {
      case CampaignVerdict::kIds2012Total: ++out.campaign_counts.ids2012_total; break;
      case CampaignVerdict::kIds2013Total: ++out.campaign_counts.ids2013_total; break;
      case CampaignVerdict::kIds2012Partial: ++out.campaign_counts.ids2012_partial; break;
      case CampaignVerdict::kIds2013Partial: ++out.campaign_counts.ids2013_partial; break;
      case CampaignVerdict::kBlacklistPartial: ++out.campaign_counts.blacklist_partial; break;
      case CampaignVerdict::kSuspicious: ++out.campaign_counts.suspicious; break;
      case CampaignVerdict::kFalsePositive:
        ++out.campaign_counts.false_positives;
        if (!eval.noisy) ++out.campaign_counts.fp_updated;
        break;
    }

    for (auto member : campaign.servers) {
      const auto& name = result.server_name(member);
      if (!detected_names.insert(name).second) continue;
      ++out.server_counts.smash;

      const auto verdict = classify_server(result, member, campaign, eval.verdict);
      switch (verdict) {
        case ServerVerdict::kIds2012: ++out.server_counts.ids2012; break;
        case ServerVerdict::kIds2013: ++out.server_counts.ids2013; break;
        case ServerVerdict::kBlacklist: ++out.server_counts.blacklist; break;
        case ServerVerdict::kNewServer: ++out.server_counts.new_servers; break;
        case ServerVerdict::kSuspicious: ++out.server_counts.suspicious; break;
        case ServerVerdict::kFalsePositive:
          ++out.server_counts.false_positives;
          if (!truth_.server_is_noise(name)) ++out.server_counts.fp_updated;
          break;
      }

      if (truth_.server_is_malicious(name)) ++out.detected_truly_malicious;
      else if (truth_.server_is_noise(name)) ++out.detected_noise;
      else ++out.detected_benign;
    }
    out.campaigns.push_back(eval);
  }

  // The paper's rate is against all servers observed in the trace (61 FP /
  // 92,517 servers ~= 0.066% for Data2011day at thresh 0.5).
  const double all_servers =
      static_cast<double>(result.pre.servers_before_aggregation);
  if (all_servers > 0) {
    out.fp_rate = out.server_counts.false_positives / all_servers;
    out.fp_rate_updated = out.server_counts.fp_updated / all_servers;
  }

  // False negatives: IDS-labeled (either vintage) servers never detected,
  // grouped by threat id as the paper does.
  std::unordered_map<std::string, std::vector<std::string>> missed_by_threat;
  for (const auto& [server, threats] : labels2013_.threats) {
    if (detected_names.count(server)) continue;
    for (const auto& threat : threats) missed_by_threat[threat].push_back(server);
  }
  for (auto& [threat, servers] : missed_by_threat) {
    std::sort(servers.begin(), servers.end());
    out.false_negatives.push_back({threat, std::move(servers)});
  }
  std::sort(out.false_negatives.begin(), out.false_negatives.end(),
            [](const auto& a, const auto& b) { return a.threat_id < b.threat_id; });
  return out;
}

}  // namespace smash::core
