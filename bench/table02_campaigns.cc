// Reproduces paper Table II: number of malicious campaigns (campaigns with
// >= 2 involved clients) across the `thresh` sweep, verified against the
// IDS vintages, blacklists, liveness, and noise exclusion.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace smash;
  const auto table = bench::campaign_sweep_table(
      "Table II: number of malicious campaigns (>= 2 involved clients)",
      {"2011day", "2012day"}, /*single_client=*/false);
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape targets (paper): SMASH count falls as thresh rises");
  std::puts("  (34/17/11/6 for 2011day); FP falls to ~0 at 1.5; FP(Updated)");
  std::puts("  removes the Torrent/TeamViewer noise herds.");
  return 0;
}
