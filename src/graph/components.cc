#include "graph/components.h"

namespace smash::graph {

std::vector<std::vector<std::uint32_t>> Components::groups() const {
  std::vector<std::vector<std::uint32_t>> out(count);
  for (std::uint32_t v = 0; v < component_of.size(); ++v) {
    out[component_of[v]].push_back(v);
  }
  return out;
}

Components connected_components(const Graph& g) {
  const std::uint32_t n = g.num_nodes();
  Components result;
  result.component_of.assign(n, UINT32_MAX);

  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (result.component_of[start] != UINT32_MAX) continue;
    const std::uint32_t comp = result.count++;
    stack.push_back(start);
    result.component_of[start] = comp;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const auto& nb : g.neighbors(u)) {
        if (result.component_of[nb.node] == UINT32_MAX) {
          result.component_of[nb.node] = comp;
          stack.push_back(nb.node);
        }
      }
    }
  }
  return result;
}

}  // namespace smash::graph
