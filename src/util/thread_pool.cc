#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace smash::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned count = std::max(num_threads, 1u);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Workers and the calling thread pull indices from a shared counter, so
  // uneven task costs balance automatically.
  std::atomic<std::size_t> next{0};
  const auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  const std::size_t helpers = std::min<std::size_t>(pool.size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) futures.push_back(pool.submit(drain));
  // The workers reference locals of this frame, so every future must be
  // awaited before returning — even if the calling-thread drain throws.
  std::exception_ptr first_error;
  try {
    drain();
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace smash::util
