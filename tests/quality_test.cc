// Unit tests for the detection-quality evaluator (src/synth/quality.h):
// precision/recall/F1/latency scored against hand-built observation trails
// where every expected number is computable by inspection, the floor
// machinery, and one small end-to-end scenario → StreamEngine → metrics run
// with exact expected scores.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "stream/stream_config.h"
#include "synth/quality.h"
#include "synth/scenarios.h"

namespace smash {
namespace {

synth::StreamCampaignTruth campaign(std::vector<std::string> servers,
                                    std::uint64_t start_s,
                                    std::uint64_t end_s) {
  synth::StreamCampaignTruth truth;
  truth.servers = std::move(servers);
  truth.start_s = start_s;
  truth.end_s = end_s;
  truth.bots = 3;
  return truth;
}

TEST(QualityEvaluator, HandBuiltTrailScoresExactly) {
  // Two campaigns, three truth servers. Campaign A ({a.test, b.test})
  // activates at epoch 2 and is first seen (a.test only) at epoch 5;
  // campaign B ({c.test}) activates at epoch 7 and is seen the same epoch.
  // b.test is never flagged; benign1.org is a false positive.
  synth::ScenarioTruth truth;
  truth.duration_s = 6000;
  truth.campaigns.push_back(campaign({"a.test", "b.test"}, 1200, 4200));
  truth.campaigns.push_back(campaign({"c.test"}, 4200, 6000));
  truth.benign_2lds = {"benign1.org"};

  const std::vector<synth::DetectionObservation> observations = {
      {.last_epoch = 5, .flagged_2lds = {"a.test", "benign1.org"}},
      {.last_epoch = 7, .flagged_2lds = {"a.test", "c.test"}},
  };

  const auto q = synth::evaluate_quality("hand", observations, truth, 600);
  EXPECT_EQ(q.truth_servers, 3u);
  EXPECT_EQ(q.flagged_2lds, 3u);
  EXPECT_EQ(q.true_positives, 2u);
  EXPECT_EQ(q.false_positives, 1u);
  EXPECT_EQ(q.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(q.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.f1, 2.0 / 3.0);  // p == r implies f1 == p
  EXPECT_EQ(q.campaigns, 2u);
  EXPECT_EQ(q.campaigns_detected, 2u);
  // A: epoch 5 - activation 2 = 3; B: 7 - 7 = 0; mean 1.5, max 3.
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_mean, 1.5);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_max, 3.0);
}

TEST(QualityEvaluator, DetectionBeforeActivationEpochClampsToZero) {
  // A publication can flag a campaign in the very window that closes its
  // activation epoch (or earlier when epochs are coarse); latency must
  // clamp at zero rather than wrap.
  synth::ScenarioTruth truth;
  truth.duration_s = 6000;
  truth.campaigns.push_back(campaign({"late.test"}, 4800, 6000));  // epoch 8
  const std::vector<synth::DetectionObservation> observations = {
      {.last_epoch = 7, .flagged_2lds = {"late.test"}},
  };
  const auto q = synth::evaluate_quality("clamp", observations, truth, 600);
  EXPECT_EQ(q.campaigns_detected, 1u);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_mean, 0.0);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_max, 0.0);
}

TEST(QualityEvaluator, AllBenignNothingFlaggedIsPerfect) {
  synth::ScenarioTruth truth;
  truth.duration_s = 6000;
  truth.benign_2lds = {"a.org", "b.org"};
  const std::vector<synth::DetectionObservation> observations = {
      {.last_epoch = 3, .flagged_2lds = {}},
      {.last_epoch = 9, .flagged_2lds = {}},
  };
  const auto q = synth::evaluate_quality("benign", observations, truth, 600);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // vacuous: nothing flagged
  EXPECT_DOUBLE_EQ(q.recall, 1.0);     // vacuous: nothing to find
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_EQ(q.campaigns, 0u);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_max, 0.0);
  // This is exactly the flash-crowd floor shape: it must pass it.
  EXPECT_TRUE(synth::meets_floor(q, synth::floor_for("flash_crowd_benign")));
}

TEST(QualityEvaluator, NeverDetectedCampaignZeroesRecallAndF1) {
  synth::ScenarioTruth truth;
  truth.duration_s = 6000;
  truth.campaigns.push_back(campaign({"x.test", "y.test"}, 0, 6000));
  const std::vector<synth::DetectionObservation> observations = {
      {.last_epoch = 9, .flagged_2lds = {}},
  };
  const auto q = synth::evaluate_quality("missed", observations, truth, 600);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
  EXPECT_EQ(q.false_negatives, 2u);
  EXPECT_EQ(q.campaigns_detected, 0u);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_mean, 0.0);

  synth::QualityFloor floor;
  floor.min_recall = 1.0;
  std::string why;
  EXPECT_FALSE(synth::meets_floor(q, floor, &why));
  EXPECT_NE(why.find("recall"), std::string::npos) << why;
  EXPECT_NE(why.find("campaigns detected"), std::string::npos) << why;
}

TEST(QualityFloors, EveryViolationIsReported) {
  synth::ScenarioQuality q;
  q.scenario = "bad";
  q.precision = 0.5;
  q.recall = 0.5;
  q.detection_latency_epochs_max = 4.0;
  q.false_positives = 3;
  q.campaigns = 2;
  q.campaigns_detected = 1;

  synth::QualityFloor floor;
  floor.min_precision = 0.9;
  floor.min_recall = 1.0;
  floor.max_detection_latency_epochs = 2.0;
  floor.max_false_positive_2lds = 1;

  std::string why;
  EXPECT_FALSE(synth::meets_floor(q, floor, &why));
  for (const char* needle : {"precision", "recall", "detection latency",
                             "false-positive 2LDs", "campaigns detected"}) {
    EXPECT_NE(why.find(needle), std::string::npos) << "missing: " << needle
                                                   << "\n" << why;
  }

  synth::ScenarioQuality good;
  good.scenario = "good";
  good.campaigns = good.campaigns_detected = 2;
  std::string empty;
  EXPECT_TRUE(synth::meets_floor(good, floor, &empty));
  EXPECT_TRUE(empty.empty());
}

TEST(QualityFloors, UnknownScenarioGetsPermissiveDefault) {
  const auto floor = synth::floor_for("no_such_scenario");
  synth::ScenarioQuality terrible;
  terrible.scenario = "no_such_scenario";
  terrible.precision = 0.0;
  terrible.recall = 0.0;
  terrible.false_positives = 1000;
  terrible.detection_latency_epochs_max = 50.0;
  terrible.campaigns = 3;
  EXPECT_TRUE(synth::meets_floor(terrible, floor));
  // Whereas the tracked families are not permissive.
  EXPECT_GT(synth::floor_for("staggered_campaigns").min_recall, 0.0);
  EXPECT_EQ(synth::floor_for("flash_crowd_benign").max_false_positive_2lds, 0u);
}

TEST(QualityEndToEnd, SmallScenarioThroughEngineScoresPerfectly) {
  // One clean all-signals campaign over a benign background, sized so the
  // exact scores are forced: precision/recall/F1 = 1, zero false positives.
  synth::ScenarioBuilder builder("e2e", 21, 6000);
  synth::BenignSpec benign;
  benign.servers = 60;
  benign.clients = 80;
  benign.visits = 800;
  builder.add_benign_background(benign);
  synth::CampaignSpec campaign;
  campaign.label = "e2e";
  campaign.servers = 4;
  campaign.bots = 4;
  campaign.start_s = 1200;
  campaign.end_s = 4800;
  campaign.poll_interval_s = 200;
  builder.add_campaign(campaign);
  const auto scenario = std::move(builder).build();
  ASSERT_EQ(scenario.truth.campaigns.size(), 1u);

  stream::StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 4;
  config.smash.idf_threshold = 100;
  const auto run = synth::run_scenario(scenario, config);
  ASSERT_FALSE(run.observations.empty());

  const auto q = synth::evaluate_quality(scenario.name, run.observations,
                                         scenario.truth, config.epoch_seconds);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  EXPECT_EQ(q.false_positives, 0u);
  EXPECT_EQ(q.truth_servers, 4u);
  EXPECT_EQ(q.campaigns_detected, 1u);

  // Independently recompute the latency from the raw trail and require the
  // evaluator to agree: first publication intersecting the campaign, minus
  // the activation epoch (1200 / 600 = 2), clamped at zero.
  const auto& truth = scenario.truth.campaigns[0];
  double expected_latency = -1.0;
  for (const auto& observation : run.observations) {
    const bool hit = std::any_of(
        truth.servers.begin(), truth.servers.end(),
        [&](const std::string& server) {
          return std::find(observation.flagged_2lds.begin(),
                           observation.flagged_2lds.end(),
                           server) != observation.flagged_2lds.end();
        });
    if (!hit) continue;
    expected_latency =
        observation.last_epoch > 2
            ? static_cast<double>(observation.last_epoch - 2)
            : 0.0;
    break;
  }
  ASSERT_GE(expected_latency, 0.0) << "campaign never flagged";
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_mean, expected_latency);
  EXPECT_DOUBLE_EQ(q.detection_latency_epochs_max, expected_latency);
}

}  // namespace
}  // namespace smash
