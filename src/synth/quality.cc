#include "synth/quality.h"

#include <algorithm>
#include <set>
#include <string>

#include "stream/engine.h"

namespace smash::synth {

DetectionObservation observe(const stream::DetectionSnapshot& snapshot) {
  DetectionObservation observation;
  observation.last_epoch = snapshot.last_epoch();
  for (const auto& campaign : snapshot.campaigns()) {
    observation.flagged_2lds.insert(observation.flagged_2lds.end(),
                                    campaign.servers.begin(),
                                    campaign.servers.end());
  }
  return observation;
}

ScenarioQuality evaluate_quality(
    const std::string& scenario_name,
    const std::vector<DetectionObservation>& observations,
    const ScenarioTruth& truth, std::uint32_t epoch_seconds) {
  ScenarioQuality q;
  q.scenario = scenario_name;
  q.campaigns = truth.campaigns.size();
  const std::uint32_t epoch = std::max<std::uint32_t>(epoch_seconds, 1);

  std::set<std::string> truth_set;
  for (const auto& campaign : truth.campaigns) {
    truth_set.insert(campaign.servers.begin(), campaign.servers.end());
  }
  std::set<std::string> flagged;
  for (const auto& observation : observations) {
    flagged.insert(observation.flagged_2lds.begin(),
                   observation.flagged_2lds.end());
  }
  q.truth_servers = truth_set.size();
  q.flagged_2lds = flagged.size();
  for (const auto& label : flagged) {
    if (truth_set.count(label)) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  q.false_negatives = q.truth_servers - q.true_positives;

  q.precision = flagged.empty()
                    ? 1.0
                    : static_cast<double>(q.true_positives) /
                          static_cast<double>(flagged.size());
  q.recall = truth_set.empty()
                 ? 1.0
                 : static_cast<double>(q.true_positives) /
                       static_cast<double>(truth_set.size());
  q.f1 = (q.precision + q.recall) == 0.0
             ? 0.0
             : 2.0 * q.precision * q.recall / (q.precision + q.recall);

  // Per-campaign latency: activation epoch to the first publication whose
  // flagged set intersects the campaign's servers. A publication can close
  // the activation epoch itself, so latency 0 means "first possible window".
  double latency_sum = 0.0;
  for (const auto& campaign : truth.campaigns) {
    const stream::EpochId activation = campaign.start_s / epoch;
    bool detected = false;
    for (const auto& observation : observations) {
      const bool hit = std::any_of(
          campaign.servers.begin(), campaign.servers.end(),
          [&](const std::string& server) {
            return std::find(observation.flagged_2lds.begin(),
                             observation.flagged_2lds.end(),
                             server) != observation.flagged_2lds.end();
          });
      if (!hit) continue;
      detected = true;
      const double latency =
          observation.last_epoch > activation
              ? static_cast<double>(observation.last_epoch - activation)
              : 0.0;
      latency_sum += latency;
      q.detection_latency_epochs_max =
          std::max(q.detection_latency_epochs_max, latency);
      break;
    }
    if (detected) ++q.campaigns_detected;
  }
  if (q.campaigns_detected > 0) {
    q.detection_latency_epochs_mean =
        latency_sum / static_cast<double>(q.campaigns_detected);
  }
  return q;
}

QualityFloor floor_for(const std::string& scenario_name) {
  // Floors for the tracked matrix families sit at the recorded baseline
  // (docs/QUALITY.md: every scenario detects at 1.000 precision / 1.000
  // recall with 0 false-positive 2LDs) minus a small epsilon, so any real
  // regression — one mis-flagged 2LD, one missed server, one extra epoch
  // of latency beyond the slack — fails the matrix. The latency ceilings
  // are the recorded maxima (0 epochs everywhere; 1 for slow_burn under
  // --smoke) plus one epoch. Names outside the matrix keep the
  // default-constructed permissive floor, so ad-hoc scenarios can reuse
  // the evaluator before a baseline exists for them.
  static const std::set<std::string> kMatrix = {
      "staggered_campaigns", "slow_burn_window_straddle",
      "cdn_cloud_fronted",   "dga_burst",
      "flash_crowd_benign",  "diurnal_jitter",
      "combined_stress"};
  QualityFloor floor;
  if (!kMatrix.count(scenario_name)) return floor;
  floor.min_precision = 0.995;
  floor.min_recall = 0.995;
  floor.max_false_positive_2lds = 0;
  floor.max_detection_latency_epochs = 1.0;
  if (scenario_name == "slow_burn_window_straddle") {
    floor.max_detection_latency_epochs = 2.0;
  } else if (scenario_name == "flash_crowd_benign") {
    floor.min_precision = 1.0;  // vacuously true when nothing is flagged
    floor.min_recall = 1.0;     // no campaigns: recall is vacuous too
    floor.max_detection_latency_epochs = 0.0;
  }
  return floor;
}

std::string describe_vs_floor(const ScenarioQuality& q,
                              const QualityFloor& floor) {
  std::string out;
  const auto line = [&](const std::string& text) {
    out += "  " + q.scenario + ": " + text + "\n";
  };
  line("precision " + std::to_string(q.precision) + " (floor >= " +
       std::to_string(floor.min_precision) + ")");
  line("recall " + std::to_string(q.recall) + " (floor >= " +
       std::to_string(floor.min_recall) + ")");
  line("detection latency max " +
       std::to_string(q.detection_latency_epochs_max) +
       " epochs (floor <= " +
       std::to_string(floor.max_detection_latency_epochs) + ")");
  line("false-positive 2LDs " + std::to_string(q.false_positives) +
       " (floor <= " + std::to_string(floor.max_false_positive_2lds) + ")");
  line("campaigns detected " + std::to_string(q.campaigns_detected) + " of " +
       std::to_string(q.campaigns));
  return out;
}

bool meets_floor(const ScenarioQuality& q, const QualityFloor& floor,
                 std::string* why) {
  bool ok = true;
  const auto violation = [&](const std::string& line) {
    ok = false;
    if (why != nullptr) {
      if (!why->empty()) *why += "\n";
      *why += q.scenario + ": " + line;
    }
  };
  if (q.precision < floor.min_precision) {
    violation("precision " + std::to_string(q.precision) + " < floor " +
              std::to_string(floor.min_precision));
  }
  if (q.recall < floor.min_recall) {
    violation("recall " + std::to_string(q.recall) + " < floor " +
              std::to_string(floor.min_recall));
  }
  if (q.detection_latency_epochs_max > floor.max_detection_latency_epochs) {
    violation("detection latency " +
              std::to_string(q.detection_latency_epochs_max) +
              " epochs > floor " +
              std::to_string(floor.max_detection_latency_epochs));
  }
  if (q.false_positives > floor.max_false_positive_2lds) {
    violation("false-positive 2LDs " + std::to_string(q.false_positives) +
              " > floor " + std::to_string(floor.max_false_positive_2lds));
  }
  if (q.campaigns_detected < q.campaigns && floor.min_recall > 0.0) {
    violation("campaigns detected " + std::to_string(q.campaigns_detected) +
              " of " + std::to_string(q.campaigns));
  }
  return ok;
}

ScenarioRun run_scenario(const Scenario& scenario,
                         const stream::StreamConfig& config) {
  stream::StreamEngine engine(config, scenario.whois);
  ScenarioRun run;
  std::uint64_t seen = 0;
  const auto probe = [&] {
    if (engine.snapshots_published() == seen) return;
    seen = engine.snapshots_published();
    const auto snapshot = engine.snapshot();
    if (snapshot == nullptr) return;
    run.observations.push_back(observe(*snapshot));
    run.digests.push_back(snapshot->digest());
  };
  for (const auto& event : scenario.events) {
    ingest_event(engine, event);
    probe();
  }
  engine.finish();
  probe();
  return run;
}

}  // namespace smash::synth
