// Deterministic pseudo-random number generation for workload synthesis.
//
// Every generator in this repository is seeded explicitly so that dataset
// presets (Data2011day etc.) are bit-reproducible across runs and platforms.
// We intentionally avoid std::mt19937 + std::uniform_*_distribution in the
// synthesis path: the standard distributions are not guaranteed to produce
// identical streams across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace smash::util {

// SplitMix64: used to expand a single 64-bit seed into generator state and
// to derive independent substream seeds (seed ^ hash(tag)).
constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a, used to derive substream seeds from human-readable tags.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xoshiro256**: fast, high-quality, tiny state. Public-domain algorithm by
// Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  // Derive an independent generator for a named substream. Distinct tags
  // yield statistically independent streams from the same base seed.
  [[nodiscard]] Rng fork(std::string_view tag) const noexcept {
    return Rng{state_[0] ^ fnv1a(tag)};
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
    // Lemire's nearly-divisionless method, with rejection for exactness.
    const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Geometric-ish "at least one" count: 1 + Poisson-like tail, cheap.
  std::uint32_t one_plus_geometric(double continue_p) noexcept {
    std::uint32_t n = 1;
    while (n < 100000 && bernoulli(continue_p)) ++n;
    return n;
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform(i)]);
    }
  }

  // Sample k distinct indices from [0, n). k must be <= n.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Zipf(s, n) sampler over ranks {0, ..., n-1}: rank r has probability
// proportional to 1/(r+1)^s. Precomputes the CDF; O(log n) per draw.
// This models web-server popularity (a heavy head of CDNs/portals and a
// long tail), which is what the paper's IDF filter exploits.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);

  std::uint32_t sample(Rng& rng) const;

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(cdf_.size()); }
  double probability(std::uint32_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace smash::util
