#include "net/http.h"

namespace smash::net {

std::string_view method_name(Method m) noexcept {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kPost: return "POST";
    case Method::kHead: return "HEAD";
  }
  return "GET";
}

std::string_view uri_file(std::string_view path) noexcept {
  const auto q = path.find('?');
  std::string_view no_query = q == std::string_view::npos ? path : path.substr(0, q);
  const auto slash = no_query.rfind('/');
  if (slash == std::string_view::npos) return no_query;
  return no_query.substr(slash + 1);
}

std::string_view uri_path_only(std::string_view path) noexcept {
  const auto q = path.find('?');
  return q == std::string_view::npos ? path : path.substr(0, q);
}

std::string_view uri_query(std::string_view path) noexcept {
  const auto q = path.find('?');
  return q == std::string_view::npos ? std::string_view{} : path.substr(q + 1);
}

std::vector<std::pair<std::string_view, std::string_view>> query_params(
    std::string_view path) {
  std::vector<std::pair<std::string_view, std::string_view>> out;
  std::string_view query = uri_query(path);
  std::size_t start = 0;
  while (start <= query.size() && !query.empty()) {
    auto amp = query.find('&', start);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(start, amp - start);
    if (!pair.empty()) {
      const auto eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.emplace_back(pair, std::string_view{});
      } else {
        out.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      }
    }
    if (amp == query.size()) break;
    start = amp + 1;
  }
  return out;
}

std::string param_pattern(std::string_view path) {
  std::string out;
  for (const auto& [key, value] : query_params(path)) {
    (void)value;
    out.append(key);
    out.append("=&");
  }
  if (!out.empty()) out.pop_back();  // drop trailing '&'
  return out;
}

bool is_redirect_status(std::uint16_t status) noexcept {
  return status == 301 || status == 302 || status == 303 || status == 307 ||
         status == 308;
}

bool is_error_status(std::uint16_t status) noexcept { return status >= 400; }

}  // namespace smash::net
