#include "stream/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <type_traits>
#include <utility>
#include <variant>

#include "core/preshard.h"
#include "durability/file.h"
#include "durability/journal.h"
#include "durability/recover.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace smash::stream {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

durability::FsyncPolicy fsync_policy_of(const StreamConfig& config) {
  // WalFsync mirrors durability::FsyncPolicy value-for-value so
  // stream_config.h can stay a leaf header.
  return static_cast<durability::FsyncPolicy>(config.fsync_policy);
}

}  // namespace

std::shared_ptr<obs::Registry> StreamEngine::init_metrics() {
  if (!config_.metrics_enabled) {
    config_.smash.metrics = nullptr;
    return nullptr;
  }
  auto reg = config_.metrics ? config_.metrics
                             : std::make_shared<obs::Registry>();
  config_.smash.metrics = reg.get();
  return reg;
}

void StreamEngine::bind_metrics() {
  if (!metrics_registry_) return;
  auto& r = *metrics_registry_;
  metrics_.events = &r.counter("stream.events_total", "events ingested");
  metrics_.epoch_closes =
      &r.counter("stream.epoch_closes_total", "epochs closed");
  metrics_.windows_coalesced =
      &r.counter("stream.windows_coalesced_total",
                 "pending mining jobs replaced by a newer window");
  metrics_.snapshots = &r.counter("stream.snapshots_published_total",
                                  "detection snapshots published");
  metrics_.close_to_publish_ms = &r.latency_histogram_ms(
      "stream.close_to_publish_ms", "epoch close to snapshot visible");
  metrics_.assemble_ms = &r.latency_histogram_ms(
      "stream.assemble_ms", "window assembly (preshard merge or trace concat)");
  metrics_.mine_ms =
      &r.latency_histogram_ms("stream.mine_ms", "SmashPipeline window re-mine");
  metrics_.snapshot_build_ms = &r.latency_histogram_ms(
      "stream.snapshot_build_ms", "DetectionSnapshot build and publish");
  metrics_.mine_queue_wait_ms = &r.latency_histogram_ms(
      "stream.mine_queue_wait_ms", "epoch close to mine start");
  metrics_.mine_queue_depth =
      &r.gauge("stream.mine_queue_depth", "mining jobs in flight or pending");
  metrics_.delta_changed_2lds =
      &r.counter("pipeline.delta.changed_2lds_total",
                 "2LDs the incremental miner saw added or evicted per close");
  metrics_.delta_rescored_pairs =
      &r.counter("pipeline.delta.rescored_pairs_total",
                 "candidate pairs re-scored by delta similarity joins");
  metrics_.delta_reused_pairs =
      &r.counter("pipeline.delta.reused_pairs_total",
                 "similarity edges carried over from the previous close");
  metrics_.delta_repair_sweeps =
      &r.counter("pipeline.delta.repair_sweeps_total",
                 "warm-start Louvain repair sweeps");
  metrics_.delta_full_fallbacks =
      &r.counter("pipeline.delta.full_fallbacks_total",
                 "per-dimension falls back to a full mine");
  r.gauge_callback(
      "stream.snapshot_age_ms",
      [this] {
        const auto last = last_publish_ns_.load(std::memory_order_relaxed);
        if (last < 0) return -1.0;
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const auto now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        return static_cast<double>(now_ns - last) / 1e6;
      },
      "ms since the last snapshot publish (-1 before the first)");
  if (!config_.metrics_dir.empty()) {
    metrics_logger_ = std::make_unique<obs::MetricsLogger>(
        metrics_registry_, config_.metrics_dir + "/metrics.jsonl",
        std::chrono::milliseconds(config_.metrics_interval_ms));
  }
}

StreamEngine::StreamEngine(StreamConfig config, const whois::Registry& registry)
    : config_(std::move(config)), registry_(registry),
      metrics_registry_(init_metrics()), pipeline_(config_.smash),
      ingestor_(config_) {
  bind_metrics();
  if (!config_.durability_dir.empty()) {
    SMASH_CHECK(!durability::DurableJournal::dir_has_state(config_.durability_dir),
                "StreamEngine: durability_dir already holds WAL/checkpoint "
                "state; use StreamEngine::recover()");
    journal_ = std::make_unique<durability::DurableJournal>(
        config_.durability_dir, fsync_policy_of(config_));
    journal_->set_metrics(metrics_registry_.get());
  }
  if (config_.incremental_mining) {
    delta_miner_ = std::make_unique<core::DeltaMiner>();
  }
  if (config_.async_mining) {
    miner_ = std::make_unique<util::ThreadPool>(1);
  }
}

StreamEngine::StreamEngine(RecoveredTag, StreamConfig config,
                           const whois::Registry& registry, StreamIngestor ingestor,
                           std::unique_ptr<durability::DurableJournal> journal,
                           std::uint64_t closes_total, RecoveryStats recovery_stats)
    : config_(std::move(config)), registry_(registry),
      metrics_registry_(init_metrics()), pipeline_(config_.smash),
      ingestor_(std::move(ingestor)), journal_(std::move(journal)),
      recovery_stats_(recovery_stats), closes_total_(closes_total) {
  bind_metrics();
  if (journal_) journal_->set_metrics(metrics_registry_.get());
  if (config_.incremental_mining) {
    // Fresh miner with empty caches: the first post-recovery close falls
    // back to a full mine (DeltaStats::fallback_no_state) and the
    // caches rebuild from there — recovered engines stay byte-identical to
    // uninterrupted ones without persisting mining state.
    delta_miner_ = std::make_unique<core::DeltaMiner>();
  }
  if (config_.async_mining) {
    miner_ = std::make_unique<util::ThreadPool>(1);
  }
}

StreamEngine::~StreamEngine() {
  // The drain can rethrow a mining failure; a destructor must not.
  try {
    wait_for_mining();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "StreamEngine: async mine failed at teardown: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "StreamEngine: async mine failed at teardown\n");
  }
  // Final metrics line, then detach the snapshot-age provider before the
  // members it reads die (the registry may be shared and outlive us).
  metrics_logger_.reset();
  if (metrics_registry_) metrics_registry_->remove("stream.snapshot_age_ms");
}

void StreamEngine::ingest(const RequestEvent& event) {
  // Per-event spans would flood the trace ring (and cost two clock reads
  // per event), so the ingest span is 1/1024-sampled; the events counter
  // still counts every event.
  obs::Span span(++ingest_sample_ % 1024 == 1 ? "stream.ingest" : nullptr);
  if (metrics_.events != nullptr) metrics_.events->inc();
  durable_prepare(event.time_s);
  if (journal_) journal_->append(event);
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::ingest(const ResolutionEvent& event) {
  obs::Span span(++ingest_sample_ % 1024 == 1 ? "stream.ingest" : nullptr);
  if (metrics_.events != nullptr) metrics_.events->inc();
  durable_prepare(event.time_s);
  if (journal_) journal_->append(event);
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::ingest(const RedirectEvent& event) {
  obs::Span span(++ingest_sample_ % 1024 == 1 ? "stream.ingest" : nullptr);
  if (metrics_.events != nullptr) metrics_.events->inc();
  durable_prepare(event.time_s);
  if (journal_) journal_->append(event);
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::durable_prepare(std::uint64_t time_s) {
  if (!journal_ || !ingestor_.has_open_epoch()) return;
  if (config_.epoch_of(time_s) > ingestor_.open_epoch()) {
    // One marker per segment regardless of how many epochs the event will
    // close: replay applies this seal, and the event's own ingest advances
    // through the remaining gap deterministically.
    journal_->seal_epoch(ingestor_.open_epoch());
  }
}

void StreamEngine::finish() {
  if (ingestor_.has_open_epoch()) {
    if (journal_) journal_->seal_epoch(ingestor_.open_epoch());
    ingestor_.close_epoch();
    on_epochs_closed(1);
  }
  wait_for_mining();
}

void StreamEngine::wait_for_mining() {
  if (!miner_) return;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mine_mutex_);
    mine_cv_.wait(lock, [this] { return !mine_in_flight_ && !pending_; });
    error = std::exchange(mine_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void StreamEngine::on_epochs_closed(std::uint32_t closed) {
  if (closed == 0) return;
  if (metrics_.epoch_closes != nullptr) metrics_.epoch_closes->inc(closed);
  closes_total_ += closed;
  maybe_checkpoint(closed);
  if (ingestor_.window().empty()) return;
  if (config_.async_mining) {
    submit_or_coalesce();
  } else {
    republish_sync();
  }
}

void StreamEngine::maybe_checkpoint(std::uint32_t closed) {
  if (!journal_) return;
  closes_since_checkpoint_ += closed;
  if (closes_since_checkpoint_ < config_.checkpoint_every_epochs) return;
  journal_->write_checkpoint(build_checkpoint());
  closes_since_checkpoint_ = 0;
}

durability::CheckpointState StreamEngine::build_checkpoint() const {
  durability::CheckpointState state;
  state.epoch_seconds = config_.epoch_seconds;
  state.window_epochs = config_.window_epochs;
  state.drop_late_events = config_.drop_late_events;
  state.closes_total = closes_total_;
  state.started = ingestor_.has_open_epoch();
  state.open_epoch = ingestor_.open_epoch();
  state.ingest_stats = ingestor_.stats();
  state.window.reserve(ingestor_.window().size());
  for (const auto& shard : ingestor_.window()) {
    durability::CheckpointShard out;
    out.epoch = shard->id();
    out.pre_fingerprint = core::shard_pre_fingerprint(shard->pre());
    shard->trace().serialize_events(out.trace_bytes);
    state.window.push_back(std::move(out));
  }
  // The event that closed the newest epoch is already in the open shard
  // (and past the replay position the journal will record), so the open
  // shard's journaled trace is part of the checkpointed state.
  ingestor_.open_shard().trace().serialize_events(state.open_trace_bytes);
  state.window_requests = ingestor_.aggregates().window_requests();
  for (auto& [host, stats] : ingestor_.aggregates().sorted_entries()) {
    state.aggregates.push_back(
        {host, stats.requests, stats.error_requests, stats.active_epochs});
  }
  return state;
}

void StreamEngine::republish_sync() {
  mine_and_publish(
      {ingestor_.window().begin(), ingestor_.window().end()},
      &ingestor_.aggregates(), ingestor_.stats(), closes_total_,
      std::chrono::steady_clock::now());
}

void StreamEngine::submit_or_coalesce() {
  MiningJob job;
  job.shards.assign(ingestor_.window().begin(), ingestor_.window().end());
  job.ingest_stats = ingestor_.stats();
  job.closes_upto = closes_total_;
  job.closed_at = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mine_mutex_);
    if (mine_in_flight_) {
      // Skip-to-newest: replace any job still waiting — the miner only ever
      // sees the latest window, and sequence accounting records the skip.
      if (pending_) {
        windows_coalesced_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_.windows_coalesced != nullptr) {
          metrics_.windows_coalesced->inc();
        }
      }
      pending_ = std::move(job);
      if (metrics_.mine_queue_depth != nullptr) metrics_.mine_queue_depth->set(2.0);
      return;
    }
    mine_in_flight_ = true;
    if (metrics_.mine_queue_depth != nullptr) metrics_.mine_queue_depth->set(1.0);
  }
  miner_->submit(
      [this, job = std::move(job)]() mutable { mining_loop(std::move(job)); });
}

void StreamEngine::mining_loop(MiningJob job) {
  for (;;) {
    try {
      mine_and_publish(job.shards, /*live_aggregates=*/nullptr,
                       job.ingest_stats, job.closes_upto, job.closed_at);
    } catch (...) {
      // A wedged engine would deadlock finish()/~StreamEngine; park the
      // error for the writer thread (wait_for_mining rethrows) and leave
      // the engine drainable — the next close simply mines a newer window.
      const std::lock_guard<std::mutex> lock(mine_mutex_);
      mine_error_ = std::current_exception();
      pending_.reset();
      mine_in_flight_ = false;
      if (metrics_.mine_queue_depth != nullptr) metrics_.mine_queue_depth->set(0.0);
      mine_cv_.notify_all();
      return;
    }
    std::unique_lock<std::mutex> lock(mine_mutex_);
    if (pending_) {
      job = std::move(*pending_);
      pending_.reset();
      if (metrics_.mine_queue_depth != nullptr) metrics_.mine_queue_depth->set(1.0);
      continue;
    }
    mine_in_flight_ = false;
    if (metrics_.mine_queue_depth != nullptr) metrics_.mine_queue_depth->set(0.0);
    mine_cv_.notify_all();
    return;
  }
}

core::WindowDelta StreamEngine::compute_window_delta(
    const std::vector<std::shared_ptr<const EpochShard>>& shards) const {
  core::WindowDelta delta;
  if (mined_window_2lds_.empty()) return delta;  // unknown = true: full mine
  delta.unknown = false;
  // Windows are at most window_epochs shards, so the quadratic membership
  // scans are noise next to the mine itself.
  const auto was_mined = [&](EpochId id) {
    for (const auto& [mined_id, lds] : mined_window_2lds_) {
      if (mined_id == id) return true;
    }
    return false;
  };
  const auto in_window = [&](EpochId id) {
    for (const auto& shard : shards) {
      if (shard->id() == id) return true;
    }
    return false;
  };
  std::vector<std::string> changed;
  for (const auto& shard : shards) {
    if (was_mined(shard->id())) continue;
    ++delta.epochs_added;
    const auto& lds = shard->pre().delta_2lds;
    changed.insert(changed.end(), lds.begin(), lds.end());
  }
  for (const auto& [mined_id, lds] : mined_window_2lds_) {
    if (in_window(mined_id)) continue;
    ++delta.epochs_evicted;
    changed.insert(changed.end(), lds.begin(), lds.end());
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  delta.changed_2lds = std::move(changed);
  return delta;
}

void StreamEngine::mine_and_publish(
    const std::vector<std::shared_ptr<const EpochShard>>& shards,
    const WindowAggregates* live_aggregates, const IngestStats& ingest_stats,
    std::uint64_t closes_upto,
    std::chrono::steady_clock::time_point closed_at) {
  EpochCloseRecord record;
  record.last_epoch = shards.back()->id();
  record.window_epochs = static_cast<std::uint32_t>(shards.size());
  // Time from epoch close to mine start: ~0 in sync mode, queue/coalesce
  // wait in async mode.
  if (metrics_.mine_queue_wait_ms != nullptr) {
    metrics_.mine_queue_wait_ms->observe(ms_since(closed_at));
  }

  // The sync path reads the ingestor's live incremental aggregates; the
  // async path rebuilds identical per-2LD stats from the captured immutable
  // shards, so the mining thread never touches mutable ingest state.
  WindowAggregates rebuilt;
  if (live_aggregates == nullptr) {
    for (const auto& shard : shards) rebuilt.add_epoch(*shard);
    live_aggregates = &rebuilt;
  }

  const auto prepare_start = std::chrono::steady_clock::now();
  core::SmashResult result;
  util::Interner merged_ips;
  net::Trace window_trace;
  const util::Interner* ip_names = nullptr;
  std::size_t window_requests = 0;
  if (config_.reuse_shard_preprocess) {
    obs::Span assemble_span("stream.assemble", "preshard-merge");
    std::vector<core::ShardPreRef> refs;
    refs.reserve(shards.size());
    for (const auto& shard : shards) {
      refs.push_back({&shard->trace(), &shard->pre()});
    }
    auto window_pre = core::merge_shard_pres(refs, config_.smash);
    assemble_span.finish();
    record.assemble_ms = ms_since(prepare_start);
    window_requests = window_pre.pre.total_requests;

    const auto mine_start = std::chrono::steady_clock::now();
    if (delta_miner_) {
      const auto delta = compute_window_delta(shards);
      try {
        SMASH_SPAN("stream.mine");
        result = pipeline_.run_incremental(std::move(window_pre.pre), registry_,
                                           *delta_miner_, window_pre.clients,
                                           window_pre.ips, delta);
      } catch (...) {
        // The window that failed to mine never published, so the miner's
        // cache no longer matches this engine's notion of the last mined
        // window. Drop both; the next close transparently full-mines.
        delta_miner_->reset();
        mined_window_2lds_.clear();
        throw;
      }
      mined_window_2lds_.clear();
      mined_window_2lds_.reserve(shards.size());
      for (const auto& shard : shards) {
        mined_window_2lds_.emplace_back(shard->id(), shard->pre().delta_2lds);
      }
      if (metrics_.delta_changed_2lds != nullptr) {
        metrics_.delta_changed_2lds->inc(delta.changed_2lds.size());
        metrics_.delta_rescored_pairs->inc(result.delta.rescored_pairs);
        metrics_.delta_reused_pairs->inc(result.delta.reused_pairs);
        metrics_.delta_repair_sweeps->inc(result.delta.repair_sweeps);
        metrics_.delta_full_fallbacks->inc(result.delta.full_fallbacks());
      }
    } else {
      SMASH_SPAN("stream.mine");
      result = pipeline_.run_preprocessed(std::move(window_pre.pre), registry_);
    }
    record.mine_ms = ms_since(mine_start);
    merged_ips = std::move(window_pre.ips);
    ip_names = &merged_ips;
  } else {
    obs::Span assemble_span("stream.assemble", "trace-concat");
    for (const auto& shard : shards) window_trace.merge_from(shard->trace());
    window_trace.finalize();
    assemble_span.finish();
    record.assemble_ms = ms_since(prepare_start);
    ip_names = &window_trace.ips();
    window_requests = window_trace.num_requests();

    const auto mine_start = std::chrono::steady_clock::now();
    {
      SMASH_SPAN("stream.mine");
      result = pipeline_.run(window_trace, registry_);
    }
    record.mine_ms = ms_since(mine_start);
  }
  record.window_requests = window_requests;

  if (config_.mine_throttle_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.mine_throttle_ms));
  }
  if (config_.mine_test_hook) config_.mine_test_hook();

  const auto snapshot_start = std::chrono::steady_clock::now();
  obs::Span publish_span("stream.publish");
  auto snapshot = DetectionSnapshot::build(
      result, *ip_names, window_requests, *live_aggregates, ingest_stats,
      shards.front()->id(), shards.back()->id(), closes_upto, recovery_stats_,
      config_.snapshot_test_hook);
  record.kept_servers = snapshot->kept_servers();
  record.campaigns = snapshot->campaigns().size();
  record.malicious_servers = snapshot->num_malicious_servers();
  record.postings_budget_exceeded = snapshot->postings_budget_exceeded();
  slot_.publish(std::move(snapshot));
  publish_span.finish();
  record.snapshot_ms = ms_since(snapshot_start);
  record.total_ms = ms_since(closed_at);
  last_publish_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  if (metrics_.snapshots != nullptr) {
    metrics_.snapshots->inc();
    metrics_.assemble_ms->observe(record.assemble_ms);
    metrics_.mine_ms->observe(record.mine_ms);
    metrics_.snapshot_build_ms->observe(record.snapshot_ms);
    metrics_.close_to_publish_ms->observe(record.total_ms);
  }

  {
    const std::lock_guard<std::mutex> lock(records_mutex_);
    record.epochs_closed = closes_upto - published_closes_;
    published_closes_ = closes_upto;
    close_records_.push_back(record);
  }
  // Advance the counter only after the record is in close_records_, so a
  // reader that polls snapshots_published() and then reads the records
  // always finds one per publication it observed.
  snapshots_published_.fetch_add(1, std::memory_order_release);
}

std::vector<EpochCloseRecord> StreamEngine::close_records() const {
  const std::lock_guard<std::mutex> lock(records_mutex_);
  return close_records_;
}

std::unique_ptr<StreamEngine> StreamEngine::recover(
    StreamConfig config, const whois::Registry& registry) {
  config.validate();
  SMASH_CHECK(!config.durability_dir.empty(),
              "StreamEngine::recover needs durability_dir");
  const auto start = std::chrono::steady_clock::now();
  const std::string& dir = config.durability_dir;

  // Exclusive lock for the whole recovery (and then, handed to the
  // resumed journal, for the engine's lifetime): a second recover() or a
  // live journal on the same dir fails here instead of interleaving.
  durability::File::make_dirs(dir);
  auto dir_lock = durability::DirLock::acquire(dir);

  RecoveryStats rstats;
  rstats.recovered = true;
  auto ckpt = durability::load_latest_checkpoint(dir, &rstats.checkpoints_skipped);

  std::uint64_t closes_total = 0;
  std::uint64_t records_logged = 0;
  durability::WalPosition replay_from;  // defaults to segment 1, offset 0
  std::optional<StreamIngestor> ingestor;
  if (ckpt) {
    if (ckpt->epoch_seconds != config.epoch_seconds ||
        ckpt->window_epochs != config.window_epochs ||
        ckpt->drop_late_events != config.drop_late_events) {
      throw durability::RecoveryError(
          "checkpoint was taken under a different stream configuration "
          "(epoch geometry or late-event policy)");
    }
    const auto deserialize = [](const std::string& bytes) {
      try {
        return net::Trace::deserialize_events(bytes);
      } catch (const std::exception& e) {
        // The blob passed its CRC, so this is a writer bug, not bit rot.
        throw durability::RecoveryError(
            std::string("checkpointed trace does not decode: ") + e.what());
      }
    };
    std::deque<std::shared_ptr<const EpochShard>> window;
    for (const auto& shard : ckpt->window) {
      auto restored =
          EpochShard::restore_sealed(shard.epoch, deserialize(shard.trace_bytes));
      // The ShardPre cache is rebuilt, not deserialized; the fingerprint
      // proves the rebuild matches what the pre-crash engine was mining.
      if (core::shard_pre_fingerprint(restored.pre()) != shard.pre_fingerprint) {
        throw durability::RecoveryError(
            "rebuilt shard preprocess cache diverges from checkpoint "
            "fingerprint");
      }
      window.push_back(
          std::make_shared<const EpochShard>(std::move(restored)));
    }
    ingestor = StreamIngestor::restore(
        config, ckpt->started, ckpt->open_epoch,
        EpochShard::restore_open(ckpt->open_epoch,
                                 deserialize(ckpt->open_trace_bytes)),
        std::move(window), ckpt->ingest_stats);

    // The aggregates were rebuilt from the restored shards; the checkpoint
    // carries the original listing as a cross-check.
    const auto rebuilt = ingestor->aggregates().sorted_entries();
    bool aggregates_match =
        rebuilt.size() == ckpt->aggregates.size() &&
        ingestor->aggregates().window_requests() == ckpt->window_requests;
    for (std::size_t i = 0; aggregates_match && i < rebuilt.size(); ++i) {
      const auto& [host, stats] = rebuilt[i];
      const auto& expected = ckpt->aggregates[i];
      aggregates_match = host == expected.host_2ld &&
                         stats.requests == expected.requests &&
                         stats.error_requests == expected.error_requests &&
                         stats.active_epochs == expected.active_epochs;
    }
    if (!aggregates_match) {
      throw durability::RecoveryError(
          "rebuilt window aggregates diverge from checkpoint");
    }

    rstats.used_checkpoint = true;
    rstats.checkpoint_closes = ckpt->closes_total;
    closes_total = ckpt->closes_total;
    records_logged = ckpt->records_logged;
    replay_from = {ckpt->replay_segment, ckpt->replay_offset};
  } else {
    ingestor.emplace(config);
  }

  const auto replay = durability::replay_wal(
      dir, replay_from.segment, replay_from.offset,
      [&](const durability::WalRecord& record) {
        std::visit(
            [&](const auto& r) {
              using T = std::decay_t<decltype(r)>;
              if constexpr (std::is_same_v<T, durability::SealMarker>) {
                // Seal markers are idempotent against the event-driven
                // closes the following event replays: apply only when the
                // named epoch is still the open one.
                if (ingestor->has_open_epoch() && ingestor->open_epoch() == r.epoch) {
                  ingestor->close_epoch();
                  ++closes_total;
                }
              } else {
                closes_total += ingestor->ingest(r).epochs_closed;
              }
            },
            record);
      },
      fsync_policy_of(config));
  rstats.segments_scanned = replay.segments_scanned;
  rstats.records_replayed = replay.records_replayed;
  rstats.events_replayed = replay.events_replayed;
  rstats.bytes_replayed = replay.bytes_replayed;
  rstats.bytes_truncated = replay.bytes_truncated;

  auto journal = std::make_unique<durability::DurableJournal>(
      dir, fsync_policy_of(config),
      durability::WalPosition{replay.next_segment, replay.next_offset},
      records_logged + replay.records_replayed, std::move(dir_lock));

  rstats.checkpoint_on_recovery = replay.records_replayed > 0;
  rstats.recovery_ms = ms_since(start);
  auto engine = std::unique_ptr<StreamEngine>(
      new StreamEngine(RecoveredTag{}, std::move(config), registry,
                       std::move(*ingestor), std::move(journal), closes_total,
                       rstats));
  // A replayed tail is checkpointed right away: without this a
  // crash-looping process never advances its replay position (the counter
  // restarts at zero every recovery) and re-replays an ever-growing tail.
  // Checkpoint timing is invisible to snapshots, so the differential
  // guarantee is untouched.
  if (rstats.checkpoint_on_recovery) {
    engine->journal_->write_checkpoint(engine->build_checkpoint());
  }
  // Republish the recovered window so readers see verdicts immediately;
  // subsequent closes then publish exactly as the uninterrupted engine
  // would have. Runs synchronously here even in async mode — recovery is
  // not on the ingest hot path.
  if (!engine->ingestor_.window().empty()) {
    engine->republish_sync();
  }
  return engine;
}

}  // namespace smash::stream
