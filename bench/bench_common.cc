#include "bench_common.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace smash::bench {

std::vector<util::IdSet> random_key_sets(std::uint32_t items,
                                         std::uint32_t keys_per_item,
                                         std::uint32_t key_space,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::IdSet> out(items);
  for (auto& item : out) {
    item.reserve(keys_per_item);
    for (std::uint32_t k = 0; k < keys_per_item; ++k) {
      item.insert(static_cast<std::uint32_t>(rng.uniform(key_space)));
    }
    item.normalize();
  }
  return out;
}

graph::Graph planted_clique_graph(std::uint32_t cliques, std::uint32_t size,
                                  double bridge_probability,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphBuilder builder(cliques * size);
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t u = 0; u < size; ++u) {
      for (std::uint32_t v = u + 1; v < size; ++v) {
        builder.add_edge(base + u, base + v, 1.0);
      }
    }
  }
  for (std::uint32_t c = 0; c + 1 < cliques; ++c) {
    if (rng.bernoulli(bridge_probability)) {
      builder.add_edge(c * size, (c + 1) * size, 0.3);
    }
  }
  return std::move(builder).build();
}

const synth::Dataset& dataset(const std::string& preset) {
  static std::map<std::string, synth::Dataset> cache;
  auto it = cache.find(preset);
  if (it != cache.end()) return it->second;

  synth::WorldConfig config;
  if (preset == "2011day") config = synth::data2011day();
  else if (preset == "2012day") config = synth::data2012day();
  else if (preset == "2012week") config = synth::data2012week();
  else throw std::invalid_argument("unknown preset: " + preset);

  return cache.emplace(preset, synth::generate_world(config)).first->second;
}

core::SmashResult run_at_threshold(const synth::Dataset& ds, double thresh) {
  const core::SmashPipeline pipeline(core::SmashConfig{}.with_threshold(thresh));
  return pipeline.run(ds.trace, ds.whois);
}

namespace {

struct SweepCell {
  core::CampaignCounts campaigns;
  core::ServerCounts servers;
};

std::vector<SweepCell> sweep(const std::string& preset, bool single_client) {
  const auto& ds = dataset(preset);
  const core::Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
  std::vector<SweepCell> cells;
  for (const double thresh : kThresholds) {
    const auto result = run_at_threshold(ds, thresh);
    const auto eval = evaluator.evaluate(result, single_client);
    cells.push_back({eval.campaign_counts, eval.server_counts});
  }
  return cells;
}

std::vector<std::string> header_for(const std::vector<std::string>& presets) {
  std::vector<std::string> header{"Infer Thresh."};
  for (const auto& preset : presets) {
    for (const double thresh : kThresholds) {
      header.push_back(preset + " " + util::format_fixed(thresh, 1));
    }
  }
  return header;
}

}  // namespace

util::Table campaign_sweep_table(const std::string& title,
                                 const std::vector<std::string>& presets,
                                 bool single_client) {
  std::vector<std::vector<SweepCell>> columns;
  for (const auto& preset : presets) columns.push_back(sweep(preset, single_client));

  util::Table table(title);
  table.set_header(header_for(presets));
  const auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& column : columns) {
      for (const auto& cell : column) {
        cells.push_back(std::to_string(getter(cell.campaigns)));
      }
    }
    table.add_row(std::move(cells));
  };
  row("SMASH", [](const core::CampaignCounts& c) { return c.smash; });
  row("IDS 2012 total", [](const core::CampaignCounts& c) { return c.ids2012_total; });
  row("IDS 2013 total", [](const core::CampaignCounts& c) { return c.ids2013_total; });
  row("IDS 2012 partial", [](const core::CampaignCounts& c) { return c.ids2012_partial; });
  row("IDS 2013 partial", [](const core::CampaignCounts& c) { return c.ids2013_partial; });
  row("Blacklist partial", [](const core::CampaignCounts& c) { return c.blacklist_partial; });
  row("Suspicious", [](const core::CampaignCounts& c) { return c.suspicious; });
  row("False Positives", [](const core::CampaignCounts& c) { return c.false_positives; });
  row("FP (Updated)", [](const core::CampaignCounts& c) { return c.fp_updated; });
  return table;
}

util::Table server_sweep_table(const std::string& title,
                               const std::vector<std::string>& presets,
                               bool single_client) {
  std::vector<std::vector<SweepCell>> columns;
  for (const auto& preset : presets) columns.push_back(sweep(preset, single_client));

  util::Table table(title);
  table.set_header(header_for(presets));
  const auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& column : columns) {
      for (const auto& cell : column) {
        cells.push_back(std::to_string(getter(cell.servers)));
      }
    }
    table.add_row(std::move(cells));
  };
  row("SMASH", [](const core::ServerCounts& c) { return c.smash; });
  row("IDS 2012", [](const core::ServerCounts& c) { return c.ids2012; });
  row("IDS 2013", [](const core::ServerCounts& c) { return c.ids2013; });
  row("Blacklist", [](const core::ServerCounts& c) { return c.blacklist; });
  row("New Servers", [](const core::ServerCounts& c) { return c.new_servers; });
  row("Suspicious", [](const core::ServerCounts& c) { return c.suspicious; });
  row("False Positives", [](const core::ServerCounts& c) { return c.false_positives; });
  row("FP (Updated)", [](const core::ServerCounts& c) { return c.fp_updated; });
  return table;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  out += os.str();
}

}  // namespace

void JsonReporter::add(const std::string& name, double ms,
                       std::map<std::string, double> counters) {
  entries_.push_back({name, ms, std::move(counters)});
}

std::string JsonReporter::to_json() const {
  std::string out = "{\n  \"benchmark\": ";
  append_json_string(out, benchmark_set_);
  out += ",\n  \"unit\": \"ms\",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(out, entry.name);
    out += ", \"ms\": ";
    append_json_number(out, entry.ms);
    for (const auto& [key, value] : entry.counters) {
      out += ", ";
      append_json_string(out, key);
      out += ": ";
      append_json_number(out, value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool JsonReporter::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "JsonReporter: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  file << to_json();
  return static_cast<bool>(file);
}

OperatingPoint run_operating_point(const synth::Dataset& ds) {
  const core::SmashPipeline pipeline{core::SmashConfig{}};  // 0.8 / 1.0
  OperatingPoint op{pipeline.run(ds.trace, ds.whois), {}, {}};
  const core::Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
  op.multi = evaluator.evaluate(op.result, false);
  op.single = evaluator.evaluate(op.result, true);
  return op;
}

}  // namespace smash::bench
