// Always-on invariant checks. Unlike <cassert>, these fire in release
// builds too: the streaming engine's incremental aggregates are mutated by
// one thread and consumed by another, and a silent underflow there would
// serve corrupt verdicts long after the bug occurred. Abort loudly instead.
#pragma once

#include <cstdio>
#include <cstdlib>

// SMASH_CHECK(cond, msg): aborts with a diagnostic when `cond` is false.
// `msg` is a plain C string literal describing the violated invariant.
#define SMASH_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "SMASH_CHECK failed at %s:%d: (%s) — %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::fflush(stderr);                                                \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
