#include "core/dimensions.h"

#include <algorithm>
#include <stdexcept>

#include <chrono>

#include "core/file_classifier.h"
#include "graph/components.h"
#include "graph/louvain.h"
#include "graph/similarity_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace smash::core {

namespace {

// Shared tail of every dimension builder: threshold edges -> graph ->
// Louvain -> size >= 2 communities with their densities.
DimensionAshes extract_ashes(Dimension dimension, graph::GraphBuilder builder,
                             const SmashConfig& config) {
  DimensionAshes out;
  out.dimension = dimension;
  const std::uint32_t n = builder.num_nodes();
  graph::Graph g = std::move(builder).build();
  out.graph_edges = g.num_edges();

  // Louvain inherits this dimension's thread budget unless the caller
  // pinned one explicitly (LouvainOptions::num_threads == 0 = inherit).
  // Inside the concurrent dimension fan-out that budget is 1 for every
  // dimension but the client one, which gets the leftover threads — the
  // same discipline the sharded joins follow. The partition is identical
  // for every thread count and chunk size (chunked-sweep determinism), so
  // this changes wall-clock only.
  graph::LouvainOptions louvain_options = config.louvain;
  if (louvain_options.num_threads == 0) {
    louvain_options.num_threads = std::max(1u, config.num_threads);
  }
  obs::Span louvain_span("mine.louvain", dimension_name(dimension).data());
  const auto louvain_result = graph::louvain_refined(g, louvain_options);
  louvain_span.finish();
  out.modularity = louvain_result.modularity;
  out.louvain_stats = louvain_result.stats;

  out.ash_of.assign(n, -1);
  for (auto& group : louvain_result.groups()) {
    if (group.size() < 2) continue;
    Ash ash;
    ash.members = std::move(group);
    ash.density = graph::subset_density(g, ash.members);
    const auto ash_index = static_cast<std::int32_t>(out.ashes.size());
    for (auto member : ash.members) out.ash_of[member] = ash_index;
    out.ashes.push_back(std::move(ash));
  }
  return out;
}

// One dimension's candidate-pair join, dispatched on the memory budget:
// unbounded runs the single-pass (optionally probe-parallel) join; a
// budget > 0 runs the key-range-sharded bounded-memory join. All three
// paths produce byte-identical pairs and core JoinStats.
std::vector<graph::CooccurrencePair> dimension_join(
    std::span<const util::IdSet> key_sets, std::uint32_t min_shared,
    const graph::JoinOptions& join_options, const SmashConfig& config,
    unsigned join_threads, graph::JoinStats& stats) {
  if (config.join_memory_budget_bytes > 0) {
    return graph::cooccurrence_join_sharded(key_sets, min_shared, join_options,
                                            config.join_memory_budget_bytes,
                                            join_threads, &stats);
  }
  if (join_threads > 1) {
    return graph::cooccurrence_join_parallel(key_sets, min_shared,
                                             join_options, join_threads,
                                             &stats);
  }
  return graph::cooccurrence_join(key_sets, min_shared, join_options, &stats);
}

// Estimated postings entries of each dimension's join, from the aggregate
// profiles alone (no key sets are built): the client/IP joins index exactly
// the profile id sets, the file/param joins index classed/interned forms of
// them (an upper bound), and the whois join indexes at most one entry per
// non-empty record field. Cheap — one pass over the kept profiles — and
// deterministic; used only to weight the budget split below, so being an
// estimate can never change mined output.
std::vector<std::size_t> estimate_postings_entries(const PreprocessResult& pre,
                                                   const whois::Registry& registry,
                                                   int dimensions) {
  std::vector<std::size_t> entries(dimensions, 0);
  for (auto server : pre.kept) {
    const auto& profile = pre.agg.profile(server);
    entries[static_cast<int>(Dimension::kClient)] += profile.clients.size();
    entries[static_cast<int>(Dimension::kFile)] += profile.files.size();
    entries[static_cast<int>(Dimension::kIp)] += profile.ips.size();
    if (dimensions > kNumDimensions) {
      entries[static_cast<int>(Dimension::kParam)] +=
          profile.param_patterns.size();
    }
    if (const whois::Record* rec = registry.find(pre.agg.server_name(server))) {
      for (int f = 0; f < whois::kNumFields; ++f) {
        if (!rec->value(static_cast<whois::Field>(f)).empty()) {
          ++entries[static_cast<int>(Dimension::kWhois)];
        }
      }
    }
  }
  return entries;
}

// Splits join_memory_budget_bytes across the concurrently-mined dimensions.
// Weighted mode (SmashConfig::weighted_budget_split, default): every
// dimension is guaranteed a floor of a quarter of its even share (so a
// small index is never starved into shard passes by a dominant sibling),
// and the remaining ~3/4 of the budget is distributed in proportion to
// each dimension's estimated postings entries — in practice the client
// join dwarfs the others and stops paying re-probe passes for budget
// parked on tiny dimensions. Even mode is the original split, kept for
// comparison. Either way the slices sum to at most the budget (plus one
// byte per dimension from the floor-to-1), and the split affects pass
// counts only, never mined output.
std::vector<std::size_t> split_join_budget(const PreprocessResult& pre,
                                           const whois::Registry& registry,
                                           int dimensions,
                                           const SmashConfig& config) {
  const auto budget = config.join_memory_budget_bytes;
  const auto even_share =
      std::max<std::size_t>(budget / static_cast<std::size_t>(dimensions), 1);
  std::vector<std::size_t> slices(dimensions, even_share);
  if (!config.weighted_budget_split) return slices;

  const auto entries = estimate_postings_entries(pre, registry, dimensions);
  unsigned __int128 total_weight = 0;
  // +1 per dimension: a zero-entry dimension still gets a sliver, and the
  // division below can never divide by zero.
  for (auto e : entries) total_weight += e + 1;
  const std::size_t floor = std::max<std::size_t>(even_share / 4, 1);
  const std::size_t reserved = floor * static_cast<std::size_t>(dimensions);
  const std::size_t distributable = budget > reserved ? budget - reserved : 0;
  for (int d = 0; d < dimensions; ++d) {
    const auto weighted = static_cast<unsigned __int128>(distributable) *
                          (entries[d] + 1) / total_weight;
    slices[d] = floor + static_cast<std::size_t>(weighted);
  }
  return slices;
}

}  // namespace

std::string_view dimension_name(Dimension d) noexcept {
  switch (d) {
    case Dimension::kClient: return "client";
    case Dimension::kFile: return "uri-file";
    case Dimension::kIp: return "ip-set";
    case Dimension::kWhois: return "whois";
    case Dimension::kParam: return "param-pattern";
  }
  return "?";
}

const char* dimension_mine_span_name(Dimension d) noexcept {
  switch (d) {
    case Dimension::kClient: return "mine.client";
    case Dimension::kFile: return "mine.uri_file";
    case Dimension::kIp: return "mine.ip_set";
    case Dimension::kWhois: return "mine.whois";
    case Dimension::kParam: return "mine.param";
  }
  return "mine.unknown";
}

const char* dimension_mine_histogram_name(Dimension d) noexcept {
  switch (d) {
    case Dimension::kClient: return "pipeline.mine_ms.client";
    case Dimension::kFile: return "pipeline.mine_ms.uri_file";
    case Dimension::kIp: return "pipeline.mine_ms.ip_set";
    case Dimension::kWhois: return "pipeline.mine_ms.whois";
    case Dimension::kParam: return "pipeline.mine_ms.param";
  }
  return "pipeline.mine_ms.unknown";
}

unsigned dimension_join_threads(Dimension dimension,
                                const SmashConfig& config) noexcept {
  switch (dimension) {
    case Dimension::kClient:
    case Dimension::kFile:
    case Dimension::kWhois:
      return config.num_threads;
    default:
      return 1;
  }
}

std::vector<SmashConfig> per_dimension_mining_configs(
    const PreprocessResult& pre, const whois::Registry& registry,
    const SmashConfig& config, int dimensions) {
  std::vector<SmashConfig> out(dimensions, config);
  if (config.num_threads <= 1) return out;
  const auto other_dimensions = static_cast<unsigned>(dimensions - 1);
  for (int d = 0; d < dimensions; ++d) {
    out[d].num_threads =
        static_cast<Dimension>(d) == Dimension::kClient
            ? (config.num_threads > other_dimensions
                   ? config.num_threads - other_dimensions
                   : 1)
            : 1;
  }
  if (config.join_memory_budget_bytes > 0) {
    const auto slices = split_join_budget(pre, registry, dimensions, config);
    for (int d = 0; d < dimensions; ++d) {
      out[d].join_memory_budget_bytes = slices[d];
    }
  }
  return out;
}

std::size_t DimensionAshes::num_herded_servers() const {
  std::size_t count = 0;
  for (const auto& ash : ashes) count += ash.members.size();
  return count;
}

std::vector<std::uint32_t> canonical_mining_order(const PreprocessResult& pre) {
  std::vector<std::uint32_t> order(pre.kept.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&pre](std::uint32_t a, std::uint32_t b) {
              return pre.agg.server_name(pre.kept[a]) <
                     pre.agg.server_name(pre.kept[b]);
            });
  return order;
}

DimensionJoinInput build_dimension_join_input(
    Dimension dimension, const PreprocessResult& pre,
    const whois::Registry& registry, const SmashConfig& config,
    std::vector<std::uint32_t> canon_to_kept, unsigned join_threads,
    const DimensionKeyNameSources* names) {
  DimensionJoinInput input;
  input.dimension = dimension;
  input.canon_to_kept = std::move(canon_to_kept);
  input.join_threads = join_threads;
  const std::size_t n = input.canon_to_kept.size();
  input.canon_names.reserve(n);
  for (const auto k : input.canon_to_kept) {
    input.canon_names.push_back(pre.agg.server_name(pre.kept[k]));
  }
  input.key_sets.reserve(n);

  switch (dimension) {
    case Dimension::kClient:
      for (const auto k : input.canon_to_kept) {
        input.key_sets.push_back(pre.agg.profile(pre.kept[k]).clients);
      }
      input.edge_threshold = config.client_edge_threshold;
      input.postings_cap = config.join_postings_cap;
      if (names != nullptr && names->clients != nullptr) {
        const auto& client_names = names->clients->names();
        input.key_names.assign(client_names.begin(), client_names.end());
      }
      break;

    case Dimension::kIp:
      for (const auto k : input.canon_to_kept) {
        input.key_sets.push_back(pre.agg.profile(pre.kept[k]).ips);
      }
      input.edge_threshold = config.ip_edge_threshold;
      input.postings_cap = config.join_postings_cap;
      if (names != nullptr && names->ips != nullptr) {
        const auto& ip_names = names->ips->names();
        input.key_names.assign(ip_names.begin(), ip_names.end());
      }
      break;

    case Dimension::kFile: {
      const FileClassifier classifier(pre.agg.files(),
                                      config.filename_len_threshold,
                                      config.filename_cosine_threshold);
      util::IdSet set;
      for (const auto k : input.canon_to_kept) {
        const auto& files = pre.agg.profile(pre.kept[k]).files;
        set.reserve(files.size());
        for (auto file : files) set.insert(classifier.class_of(file));
        set.normalize();
        input.key_sets.push_back(util::IdSet::from_sorted_unique(set.release()));
      }
      input.edge_threshold = config.file_edge_threshold;
      input.postings_cap = config.file_postings_cap;
      if (names != nullptr) {
        // A class's canonical name is its lexicographically smallest member
        // filename — a pure function of the class's membership, so any
        // classifier merge or split (including ones caused by *other*
        // servers' files) shows up as a changed key name.
        std::vector<const std::string*> rep(classifier.num_classes(), nullptr);
        const auto& files = pre.agg.files();
        for (std::uint32_t f = 0; f < files.size(); ++f) {
          const std::string& file_name = files.name(f);
          auto& slot = rep[classifier.class_of(f)];
          if (slot == nullptr || file_name < *slot) slot = &file_name;
        }
        input.key_names.reserve(rep.size());
        for (const auto* p : rep) {
          input.key_names.push_back(p != nullptr ? *p : std::string());
        }
      }
      break;
    }

    case Dimension::kParam: {
      util::Interner patterns;
      util::IdSet set;
      for (const auto k : input.canon_to_kept) {
        const auto& raw = pre.agg.profile(pre.kept[k]).param_patterns;
        set.reserve(raw.size());
        for (const auto& pattern : raw) set.insert(patterns.intern(pattern));
        set.normalize();
        input.key_sets.push_back(util::IdSet::from_sorted_unique(set.release()));
      }
      input.edge_threshold = config.param_edge_threshold;
      input.postings_cap = config.param_postings_cap;
      if (names != nullptr) input.key_names = patterns.names();
      break;
    }

    case Dimension::kWhois: {
      // Candidate pairs share at least `whois_min_shared_fields` field
      // values; each (field, value) is interned so the co-occurrence count
      // *is* the number of shared fields. Proxy values are skipped up
      // front.
      util::Interner values;
      input.key_sets.resize(n);
      for (std::size_t c = 0; c < n; ++c) {
        const whois::Record* rec = registry.find(input.canon_names[c]);
        if (rec == nullptr) continue;
        auto& fields = input.key_sets[c];
        fields.reserve(whois::kNumFields);
        for (int f = 0; f < whois::kNumFields; ++f) {
          const auto& value = rec->value(static_cast<whois::Field>(f));
          if (value.empty() || registry.is_proxy_value(value)) continue;
          fields.insert(values.intern(
              std::string(whois::field_name(static_cast<whois::Field>(f))) +
              "\x1f" + value));
        }
        fields.normalize();
      }
      input.min_shared =
          static_cast<std::uint32_t>(config.whois_min_shared_fields);
      input.union_weight = true;
      input.postings_cap = config.join_postings_cap;
      if (names != nullptr) input.key_names = values.names();
      break;
    }
  }
  return input;
}

std::vector<graph::Edge> weight_dimension_pairs(
    const DimensionJoinInput& input,
    std::span<const graph::CooccurrencePair> pairs) {
  std::vector<graph::Edge> edges;
  edges.reserve(pairs.size());
  if (input.union_weight) {
    for (const auto& pair : pairs) {
      const auto shared = pair.shared_keys;
      const auto unioned = static_cast<std::uint32_t>(
          input.key_sets[pair.a].size() + input.key_sets[pair.b].size() -
          shared);
      if (unioned == 0) continue;
      edges.push_back({pair.a, pair.b,
                       static_cast<double>(shared) /
                           static_cast<double>(unioned)});
    }
  } else {
    for (const auto& pair : pairs) {
      const double sim = graph::bidirectional_similarity(
          pair.shared_keys, input.key_sets[pair.a].size(),
          input.key_sets[pair.b].size());
      if (sim >= input.edge_threshold) edges.push_back({pair.a, pair.b, sim});
    }
  }
  return edges;
}

DimensionAshes extract_canonical_ashes(const DimensionJoinInput& input,
                                       std::span<const graph::Edge> edges,
                                       const SmashConfig& config) {
  graph::GraphBuilder builder(
      static_cast<std::uint32_t>(input.key_sets.size()));
  for (const auto& edge : edges) builder.add_edge(edge.u, edge.v, edge.weight);
  return extract_ashes(input.dimension, std::move(builder), config);
}

DimensionAshes remap_ashes_to_kept(DimensionAshes canonical,
                                   std::span<const std::uint32_t> canon_to_kept) {
  DimensionAshes out = std::move(canonical);
  std::vector<std::int32_t> ash_of(canon_to_kept.size(), -1);
  for (std::size_t c = 0; c < out.ash_of.size(); ++c) {
    ash_of[canon_to_kept[c]] = out.ash_of[c];
  }
  out.ash_of = std::move(ash_of);
  for (auto& ash : out.ashes) {
    for (auto& member : ash.members) member = canon_to_kept[member];
    std::sort(ash.members.begin(), ash.members.end());
  }
  return out;
}

DimensionAshes mine_joined_dimension(const DimensionJoinInput& input,
                                     const SmashConfig& config,
                                     std::vector<graph::Edge>* canon_edges_out,
                                     DimensionAshes* canonical_out) {
  graph::JoinOptions join_options;
  join_options.max_postings_length = input.postings_cap;
  graph::JoinStats stats;
  obs::Span join_span("mine.join", dimension_name(input.dimension).data());
  const auto pairs = dimension_join(input.key_sets, input.min_shared,
                                    join_options, config, input.join_threads,
                                    stats);
  join_span.finish();

  auto edges = weight_dimension_pairs(input, pairs);
  DimensionAshes out = extract_canonical_ashes(input, edges, config);
  out.join_stats = stats;
  if (canonical_out != nullptr) *canonical_out = out;
  if (canon_edges_out != nullptr) *canon_edges_out = std::move(edges);
  return remap_ashes_to_kept(std::move(out), input.canon_to_kept);
}

DimensionAshes mine_dimension(Dimension dimension, const PreprocessResult& pre,
                              const whois::Registry& registry,
                              const SmashConfig& config) {
  SMASH_SPAN(dimension_mine_span_name(dimension));
  const auto start = std::chrono::steady_clock::now();
  DimensionAshes out = mine_joined_dimension(
      build_dimension_join_input(dimension, pre, registry, config,
                                 canonical_mining_order(pre),
                                 dimension_join_threads(dimension, config)),
      config);
  if (config.metrics != nullptr) {
    config.metrics->latency_histogram_ms(dimension_mine_histogram_name(dimension))
        .observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  return out;
}

std::vector<DimensionAshes> mine_all_dimensions(const PreprocessResult& pre,
                                                const whois::Registry& registry,
                                                const SmashConfig& config) {
  const int dimensions = config.enable_param_dimension ? kNumDimensions + 1
                                                       : kNumDimensions;
  std::vector<DimensionAshes> out(dimensions);
  if (config.num_threads <= 1) {
    for (int d = 0; d < dimensions; ++d) {
      out[d] = mine_dimension(static_cast<Dimension>(d), pre, registry, config);
    }
    return out;
  }
  // Dimensions are independent (each reads `pre`/`registry` and writes only
  // its own slot), so the result is identical for any thread count. Inside
  // the fan-out, only the client dimension — much the largest join — gets
  // the threads left over once every other dimension has a worker; the
  // file/whois joins run their serial path here so the total number of
  // active threads stays within config.num_threads (three concurrent
  // sharded joins would otherwise each spawn a leftover-sized pool). Their
  // sharding still engages when a dimension is mined on its own.
  //
  // Budget-aware fan-out: dimensions mined concurrently hold postings
  // indexes at the same time, so each gets a slice of the join memory
  // budget — cardinality-weighted by default, even otherwise (see
  // split_join_budget) — and the sum of simultaneously resident postings
  // stays within config.join_memory_budget_bytes. (Each dimension's
  // planner then picks its own pass count from that slice and its observed
  // key cardinalities; the serial path above runs dimensions one at a
  // time, so each gets the full budget there.) The split never changes
  // mined output, only pass counts. Both rules live in
  // per_dimension_mining_configs so the incremental miner can reproduce
  // them exactly.
  const auto dim_configs =
      per_dimension_mining_configs(pre, registry, config, dimensions);
  // parallel_for drains on the calling thread as well as the pool workers,
  // so size the pool one short of the budget.
  util::ThreadPool pool(std::min(config.num_threads - 1,
                                 static_cast<unsigned>(dimensions - 1)));
  util::parallel_for(pool, static_cast<std::size_t>(dimensions),
                     [&](std::size_t d) {
                       out[d] = mine_dimension(static_cast<Dimension>(d), pre,
                                               registry, dim_configs[d]);
                     });
  return out;
}

}  // namespace smash::core
