#include "stream/engine.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "core/preshard.h"

namespace smash::stream {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StreamEngine::StreamEngine(StreamConfig config, const whois::Registry& registry)
    : config_(config), registry_(registry), pipeline_(config.smash),
      ingestor_(config) {
  if (config_.async_mining) {
    miner_ = std::make_unique<util::ThreadPool>(1);
  }
}

StreamEngine::~StreamEngine() {
  // The drain can rethrow a mining failure; a destructor must not.
  try {
    wait_for_mining();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "StreamEngine: async mine failed at teardown: %s\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr, "StreamEngine: async mine failed at teardown\n");
  }
}

void StreamEngine::ingest(const RequestEvent& event) {
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::ingest(const ResolutionEvent& event) {
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::ingest(const RedirectEvent& event) {
  on_epochs_closed(ingestor_.ingest(event).epochs_closed);
}

void StreamEngine::finish() {
  if (ingestor_.has_open_epoch()) {
    ingestor_.close_epoch();
    on_epochs_closed(1);
  }
  wait_for_mining();
}

void StreamEngine::wait_for_mining() {
  if (!miner_) return;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mine_mutex_);
    mine_cv_.wait(lock, [this] { return !mine_in_flight_ && !pending_; });
    error = std::exchange(mine_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void StreamEngine::on_epochs_closed(std::uint32_t closed) {
  if (closed == 0) return;
  closes_total_ += closed;
  if (ingestor_.window().empty()) return;
  if (config_.async_mining) {
    submit_or_coalesce();
  } else {
    republish_sync();
  }
}

void StreamEngine::republish_sync() {
  mine_and_publish(
      {ingestor_.window().begin(), ingestor_.window().end()},
      &ingestor_.aggregates(), ingestor_.stats(), closes_total_,
      std::chrono::steady_clock::now());
}

void StreamEngine::submit_or_coalesce() {
  MiningJob job;
  job.shards.assign(ingestor_.window().begin(), ingestor_.window().end());
  job.ingest_stats = ingestor_.stats();
  job.closes_upto = closes_total_;
  job.closed_at = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mine_mutex_);
    if (mine_in_flight_) {
      // Skip-to-newest: replace any job still waiting — the miner only ever
      // sees the latest window, and sequence accounting records the skip.
      if (pending_) windows_coalesced_.fetch_add(1, std::memory_order_relaxed);
      pending_ = std::move(job);
      return;
    }
    mine_in_flight_ = true;
  }
  miner_->submit(
      [this, job = std::move(job)]() mutable { mining_loop(std::move(job)); });
}

void StreamEngine::mining_loop(MiningJob job) {
  for (;;) {
    try {
      mine_and_publish(job.shards, /*live_aggregates=*/nullptr,
                       job.ingest_stats, job.closes_upto, job.closed_at);
    } catch (...) {
      // A wedged engine would deadlock finish()/~StreamEngine; park the
      // error for the writer thread (wait_for_mining rethrows) and leave
      // the engine drainable — the next close simply mines a newer window.
      const std::lock_guard<std::mutex> lock(mine_mutex_);
      mine_error_ = std::current_exception();
      pending_.reset();
      mine_in_flight_ = false;
      mine_cv_.notify_all();
      return;
    }
    std::unique_lock<std::mutex> lock(mine_mutex_);
    if (pending_) {
      job = std::move(*pending_);
      pending_.reset();
      continue;
    }
    mine_in_flight_ = false;
    mine_cv_.notify_all();
    return;
  }
}

void StreamEngine::mine_and_publish(
    const std::vector<std::shared_ptr<const EpochShard>>& shards,
    const WindowAggregates* live_aggregates, const IngestStats& ingest_stats,
    std::uint64_t closes_upto,
    std::chrono::steady_clock::time_point closed_at) {
  EpochCloseRecord record;
  record.last_epoch = shards.back()->id();
  record.window_epochs = static_cast<std::uint32_t>(shards.size());

  // The sync path reads the ingestor's live incremental aggregates; the
  // async path rebuilds identical per-2LD stats from the captured immutable
  // shards, so the mining thread never touches mutable ingest state.
  WindowAggregates rebuilt;
  if (live_aggregates == nullptr) {
    for (const auto& shard : shards) rebuilt.add_epoch(*shard);
    live_aggregates = &rebuilt;
  }

  const auto prepare_start = std::chrono::steady_clock::now();
  core::SmashResult result;
  util::Interner merged_ips;
  net::Trace window_trace;
  const util::Interner* ip_names = nullptr;
  std::size_t window_requests = 0;
  if (config_.reuse_shard_preprocess) {
    std::vector<core::ShardPreRef> refs;
    refs.reserve(shards.size());
    for (const auto& shard : shards) {
      refs.push_back({&shard->trace(), &shard->pre()});
    }
    auto window_pre = core::merge_shard_pres(refs, config_.smash);
    record.assemble_ms = ms_since(prepare_start);
    merged_ips = std::move(window_pre.ips);
    ip_names = &merged_ips;
    window_requests = window_pre.pre.total_requests;

    const auto mine_start = std::chrono::steady_clock::now();
    result = pipeline_.run_preprocessed(std::move(window_pre.pre), registry_);
    record.mine_ms = ms_since(mine_start);
  } else {
    for (const auto& shard : shards) window_trace.merge_from(shard->trace());
    window_trace.finalize();
    record.assemble_ms = ms_since(prepare_start);
    ip_names = &window_trace.ips();
    window_requests = window_trace.num_requests();

    const auto mine_start = std::chrono::steady_clock::now();
    result = pipeline_.run(window_trace, registry_);
    record.mine_ms = ms_since(mine_start);
  }
  record.window_requests = window_requests;

  if (config_.mine_throttle_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.mine_throttle_ms));
  }
  if (config_.mine_test_hook) config_.mine_test_hook();

  const auto snapshot_start = std::chrono::steady_clock::now();
  auto snapshot = DetectionSnapshot::build(
      result, *ip_names, window_requests, *live_aggregates, ingest_stats,
      shards.front()->id(), shards.back()->id(), closes_upto);
  record.kept_servers = snapshot->kept_servers();
  record.campaigns = snapshot->campaigns().size();
  record.malicious_servers = snapshot->num_malicious_servers();
  record.postings_budget_exceeded = snapshot->postings_budget_exceeded();
  slot_.publish(std::move(snapshot));
  record.snapshot_ms = ms_since(snapshot_start);
  record.total_ms = ms_since(closed_at);

  {
    const std::lock_guard<std::mutex> lock(records_mutex_);
    record.epochs_closed = closes_upto - published_closes_;
    published_closes_ = closes_upto;
    close_records_.push_back(record);
  }
  // Advance the counter only after the record is in close_records_, so a
  // reader that polls snapshots_published() and then reads the records
  // always finds one per publication it observed.
  snapshots_published_.fetch_add(1, std::memory_order_release);
}

std::vector<EpochCloseRecord> StreamEngine::close_records() const {
  const std::lock_guard<std::mutex> lock(records_mutex_);
  return close_records_;
}

}  // namespace smash::stream
