#include "durability/crc32c.h"

#include <array>

namespace smash::durability {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<std::uint8_t>(c)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace smash::durability
