// Pruning (paper §III-D): collapse redirection groups and referrer groups
// onto their landing server, then drop groups left with fewer than two
// servers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/preprocess.h"
#include "core/smash_config.h"

namespace smash::core {

struct PruneStats {
  std::uint32_t redirect_members_replaced = 0;
  std::uint32_t referrer_members_replaced = 0;
  std::uint32_t groups_dropped = 0;
};

struct PruneResult {
  // Groups surviving pruning; members are kept-indices, ascending, deduped.
  std::vector<std::vector<std::uint32_t>> groups;
  PruneStats stats;
};

// `groups` are the correlation survivors (kept-indices). Redirection data
// comes from the aggregated trace (standing in for the paper's active
// probing); referrer data from the HTTP Referer header counts.
PruneResult prune(const PreprocessResult& pre,
                  const std::vector<std::vector<std::uint32_t>>& groups,
                  const SmashConfig& config);

}  // namespace smash::core
