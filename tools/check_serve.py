#!/usr/bin/env python3
"""Validate a BENCH_serve.json written by bench/loadgen.

Checks (see docs/SERVING.md):
  - the file is the JsonReporter shape (``benchmark: "serve"`` with an
    ``entries`` list);
  - at least three load stages are present, each reporting offered_qps,
    achieved_qps, the sent/received/ok/stale/rejected outcome counts, and
    the p50/p99/p999 latency percentiles;
  - no stage lost responses (received == sent: every request got an
    explicit answer, shed or not);
  - at least one stage shows explicit shedding — a non-zero rejected or
    stale count.  Overload must surface as loud kRejected/kStale answers,
    never as silently dropped or endlessly queued requests;
  - the serve/metrics_summary entry agrees with the stages: the server's
    own rejected_total/stale_total counters corroborate the shedding the
    client observed.

Exits non-zero with a message on the first violation.

Usage: check_serve.py BENCH_serve.json [--min-stages N]
"""

import argparse
import json
import sys

STAGE_FIELDS = (
    "offered_qps",
    "sent",
    "received",
    "ok",
    "stale",
    "rejected",
    "p50_us",
    "p99_us",
    "p999_us",
)


def fail(message):
    print(f"check_serve: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--min-stages", type=int, default=3)
    args = parser.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.path}: {e}")

    if doc.get("benchmark") != "serve":
        fail(f'benchmark is {doc.get("benchmark")!r}, expected "serve"')
    entries = doc.get("entries")
    if not isinstance(entries, list):
        fail("entries is missing or not a list")

    stages = []
    summary = None
    for entry in entries:
        name = entry.get("name", "")
        if name == "serve/metrics_summary":
            summary = entry
        elif name.startswith("serve/"):
            stages.append(entry)

    if len(stages) < args.min_stages:
        fail(f"only {len(stages)} load stages, need >= {args.min_stages}")

    shed_rejected = 0
    shed_stale = 0
    for stage in stages:
        name = stage["name"]
        for field in STAGE_FIELDS:
            if field not in stage:
                fail(f"{name}: missing field {field!r}")
            if not isinstance(stage[field], (int, float)):
                fail(f"{name}: field {field!r} is not numeric")
        if stage["received"] != stage["sent"]:
            fail(
                f'{name}: lost responses ({stage["received"]:.0f} received '
                f'of {stage["sent"]:.0f} sent)'
            )
        if stage["ok"] + stage["stale"] + stage["rejected"] != stage["received"]:
            fail(f"{name}: ok+stale+rejected does not add up to received")
        if not (stage["p50_us"] <= stage["p99_us"] <= stage["p999_us"]):
            fail(f"{name}: percentiles are not ordered (p50 <= p99 <= p999)")
        shed_rejected += stage["rejected"]
        shed_stale += stage["stale"]

    if shed_rejected + shed_stale == 0:
        fail(
            "no stage shows explicit shedding (rejected and stale are 0 "
            "everywhere) — the overload path was not exercised"
        )

    if summary is None:
        fail("serve/metrics_summary entry is missing")
    for field in ("accepted_total", "rejected_total", "stale_total",
                  "responses_total", "snapshots_published"):
        if field not in summary:
            fail(f"serve/metrics_summary: missing field {field!r}")
    # The server's own counters must corroborate the client-observed
    # shedding. Totals can exceed the stage sums (other connections, e.g.
    # an operator poking the port), never fall short.
    if summary["rejected_total"] < shed_rejected:
        fail(
            f'server counted {summary["rejected_total"]:.0f} rejected but '
            f"clients saw {shed_rejected:.0f}"
        )
    if summary["stale_total"] < shed_stale:
        fail(
            f'server counted {summary["stale_total"]:.0f} stale but '
            f"clients saw {shed_stale:.0f}"
        )
    if summary["snapshots_published"] < 1:
        fail("no snapshots were published under load")

    print(
        f"check_serve: ok — {len(stages)} stages, "
        f"{shed_rejected:.0f} rejected + {shed_stale:.0f} stale "
        f"(explicit shedding), "
        f'{summary["snapshots_published"]:.0f} snapshots published under load'
    )


if __name__ == "__main__":
    main()
