#include "stream/snapshot.h"

#include "dns/domain.h"

namespace smash::stream {

std::shared_ptr<const DetectionSnapshot> DetectionSnapshot::build(
    const core::SmashResult& result, const util::Interner& window_ips,
    std::size_t window_requests, const WindowAggregates& aggregates,
    const IngestStats& ingest, EpochId first_epoch, EpochId last_epoch,
    std::uint64_t sequence) {
  auto snap = std::shared_ptr<DetectionSnapshot>(new DetectionSnapshot());
  snap->first_epoch_ = first_epoch;
  snap->last_epoch_ = last_epoch;
  snap->sequence_ = sequence;
  snap->window_requests_ = window_requests;
  snap->kept_servers_ = result.pre.kept.size();
  snap->postings_budget_exceeded_ = result.postings_budget_exceeded();
  snap->join_shard_passes_ = result.join_shard_passes();
  snap->peak_resident_postings_bytes_ = result.peak_resident_postings_bytes();
  snap->louvain_stats_ = result.louvain_stats();
  snap->ingest_stats_ = ingest;

  for (const auto& campaign : result.campaigns) {
    const auto campaign_index =
        static_cast<std::uint32_t>(snap->campaigns_.size());
    SnapshotCampaign out;
    out.involved_clients =
        static_cast<std::uint32_t>(campaign.involved_clients.size());
    out.single_client = campaign.single_client();

    ServerVerdict verdict;
    verdict.campaign = campaign_index;
    verdict.campaign_servers = static_cast<std::uint32_t>(campaign.servers.size());
    verdict.single_client = out.single_client;

    for (auto kept_idx : campaign.servers) {
      const std::string& name = result.server_name(kept_idx);
      out.servers.push_back(name);
      if (const auto* window_stats = aggregates.find(name)) {
        verdict.window_requests = window_stats->requests;
        verdict.active_epochs = window_stats->active_epochs;
      } else {
        verdict.window_requests = 0;
        verdict.active_epochs = 0;
      }
      snap->by_2ld_.emplace(name, verdict);
      // Index every IP the campaign server resolved to in this window: a
      // request straight to the IP (no Host aggregation possible) still
      // gets a verdict.
      for (auto ip : result.server_profile(kept_idx).ips) {
        snap->by_ip_.emplace(window_ips.name(ip), verdict);
      }
    }
    snap->campaigns_.push_back(std::move(out));
  }

  snap->built_at_ = std::chrono::steady_clock::now();
  return snap;
}

const ServerVerdict* DetectionSnapshot::find_host(std::string_view host) const {
  auto it = by_2ld_.find(dns::effective_2ld(host));
  return it == by_2ld_.end() ? nullptr : &it->second;
}

const ServerVerdict* DetectionSnapshot::find_ip(std::string_view ip) const {
  auto it = by_ip_.find(std::string(ip));
  return it == by_ip_.end() ? nullptr : &it->second;
}

}  // namespace smash::stream
