#include "util/id_set.h"

#include <gtest/gtest.h>

namespace smash::util {
namespace {

TEST(IdSet, NormalizeSortsAndDedupes) {
  IdSet s;
  s.insert(5);
  s.insert(1);
  s.insert(5);
  s.insert(3);
  s.normalize();
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_TRUE(s.is_normalized());
}

TEST(IdSet, ContainsAfterNormalize) {
  IdSet s({4, 2, 2, 9});
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(9));
  EXPECT_FALSE(s.contains(3));
}

TEST(IdSet, IntersectionSize) {
  IdSet a({1, 2, 3, 4});
  IdSet b({3, 4, 5});
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_EQ(intersection_size(b, a), 2u);
  EXPECT_EQ(intersection_size(a, IdSet{}), 0u);
}

TEST(IdSet, IntersectionValues) {
  IdSet a({1, 2, 3});
  IdSet b({2, 3, 4});
  EXPECT_EQ(intersection(a, b).values(), (std::vector<std::uint32_t>{2, 3}));
}

TEST(IdSet, UnionSize) {
  IdSet a({1, 2, 3});
  IdSet b({3, 4});
  EXPECT_EQ(union_size(a, b), 4u);
  EXPECT_EQ(union_size(a, a), 3u);
}

TEST(IdSet, EqualityAndEmpty) {
  EXPECT_EQ(IdSet({2, 1}), IdSet({1, 2, 2}));
  EXPECT_TRUE(IdSet{}.empty());
  EXPECT_EQ(IdSet{}.size(), 0u);
}

TEST(IdSet, SelfIntersection) {
  IdSet a({7, 8, 9});
  EXPECT_EQ(intersection_size(a, a), 3u);
}

TEST(IdSet, ReserveDoesNotChangeContents) {
  IdSet s;
  s.reserve(100);
  EXPECT_TRUE(s.empty());
  s.insert(2);
  s.insert(1);
  s.normalize();
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(IdSet, ReleaseHandsBackSortedStorageAndEmptiesSet) {
  IdSet s({5, 1, 3, 3});
  const auto ids = s.release();
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.is_normalized());  // empty set is trivially normalized

  // The emptied set is reusable.
  s.insert(9);
  s.normalize();
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{9}));
}

TEST(IdSet, FromSortedUniqueAdoptsWithoutCopy) {
  auto set = IdSet::from_sorted_unique({2, 4, 6});
  EXPECT_TRUE(set.is_normalized());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(4));

  // Round trip: release() output is valid from_sorted_unique() input.
  IdSet original({8, 8, 2});
  auto adopted = IdSet::from_sorted_unique(original.release());
  EXPECT_EQ(adopted, IdSet({2, 8}));
}

}  // namespace
}  // namespace smash::util
