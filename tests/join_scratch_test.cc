// Regression tests for the dense-counter join rewrite: determinism across
// runs, equivalence with the retained hash-map reference and with a
// brute-force O(N^2) intersection_size oracle, byte-identical parallel
// sharding, and JoinStats observability of the postings cap.
#include "graph/similarity_join.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace smash::graph {
namespace {

using util::IdSet;

std::vector<IdSet> random_items(std::uint32_t num_items,
                                std::uint32_t max_keys,
                                std::uint32_t key_space, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<IdSet> items(num_items);
  for (auto& item : items) {
    const auto count = rng.uniform(max_keys + 1);
    for (std::uint64_t i = 0; i < count; ++i) {
      item.insert(static_cast<std::uint32_t>(rng.uniform(key_space)));
    }
    item.normalize();
  }
  return items;
}

TEST(JoinDeterminism, RepeatedRunsAreIdentical) {
  const auto items = random_items(400, 12, 300, 0xfeedULL);
  const auto first = cooccurrence_join(items);
  const auto second = cooccurrence_join(items);
  EXPECT_EQ(first, second);  // element-wise, i.e. byte-identical content

  // And through the parallel path.
  const auto parallel_a = cooccurrence_join_parallel(items, 1, {}, 4);
  const auto parallel_b = cooccurrence_join_parallel(items, 1, {}, 4);
  EXPECT_EQ(parallel_a, parallel_b);
}

TEST(JoinDeterminism, GroupedByProbeAscending) {
  const auto items = random_items(300, 10, 200, 77);
  const auto pairs = cooccurrence_join(items);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].a, pairs[i].b);
    if (i > 0) {
      EXPECT_TRUE(pairs[i - 1].a < pairs[i].a ||
                  (pairs[i - 1].a == pairs[i].a && pairs[i - 1].b < pairs[i].b));
    }
  }
}

class JoinEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinEquivalenceTest, DenseMatchesHashMapReference) {
  const auto items = random_items(250, 10, 180, GetParam());
  for (const std::uint32_t min_shared : {1u, 2u, 3u}) {
    EXPECT_EQ(cooccurrence_join(items, min_shared),
              cooccurrence_join_reference(items, min_shared));
  }
  // With a postings cap that actually fires.
  JoinOptions capped;
  capped.max_postings_length = 6;
  EXPECT_EQ(cooccurrence_join(items, 1, capped),
            cooccurrence_join_reference(items, 1, capped));
}

TEST_P(JoinEquivalenceTest, ParallelMatchesSerialExactly) {
  const auto items = random_items(1500, 8, 900, GetParam() ^ 0xabcdULL);
  JoinStats serial_stats;
  const auto serial = cooccurrence_join(items, 2, {}, &serial_stats);
  for (const unsigned threads : {2u, 3u, 4u, 7u}) {
    JoinStats parallel_stats;
    EXPECT_EQ(cooccurrence_join_parallel(items, 2, {}, threads, &parallel_stats),
              serial);
    // Counters too: shard candidate counts sum to the serial probe count.
    EXPECT_EQ(parallel_stats, serial_stats) << "threads=" << threads;
  }
}

TEST_P(JoinEquivalenceTest, MatchesBruteForceIntersection) {
  const auto items = random_items(120, 9, 100, GetParam() + 31);
  const auto pairs = cooccurrence_join(items);
  std::size_t expected_count = 0;
  auto it = pairs.begin();
  for (std::uint32_t a = 0; a < items.size(); ++a) {
    for (std::uint32_t b = a + 1; b < items.size(); ++b) {
      const auto shared =
          static_cast<std::uint32_t>(intersection_size(items[a], items[b]));
      if (shared == 0) continue;
      ++expected_count;
      ASSERT_NE(it, pairs.end());
      EXPECT_EQ(it->a, a);
      EXPECT_EQ(it->b, b);
      EXPECT_EQ(it->shared_keys, shared);
      ++it;
    }
  }
  EXPECT_EQ(pairs.size(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(JoinStatsTest, ReportsSkippedKeysAndPeakPostings) {
  // Key 7 is in all 6 items (hub); keys 100+i are singletons.
  std::vector<IdSet> items;
  for (std::uint32_t i = 0; i < 6; ++i) {
    items.emplace_back(std::vector<std::uint32_t>{7, 100 + i, 200});
  }
  JoinOptions options;
  options.max_postings_length = 4;
  JoinStats stats;
  const auto pairs = cooccurrence_join(items, 1, options, &stats);

  EXPECT_EQ(stats.num_keys, 8u);  // 7, 200, 100..105
  EXPECT_EQ(stats.peak_postings_length, 6u);  // both hubs have 6 entries
  EXPECT_EQ(stats.skipped_keys, 2u);          // keys 7 and 200 exceed the cap
  EXPECT_EQ(stats.skipped_entries, 12u);
  EXPECT_EQ(stats.postings_entries, 18u);
  EXPECT_EQ(stats.candidate_pairs, 0u);  // nothing under the cap co-occurs
  EXPECT_EQ(stats.emitted_pairs, 0u);
  EXPECT_TRUE(pairs.empty());

  // Without the cap every pair shares both hub keys.
  options.max_postings_length = 20000;
  const auto full = cooccurrence_join(items, 1, options, &stats);
  EXPECT_EQ(full.size(), 15u);  // C(6,2)
  EXPECT_EQ(stats.skipped_keys, 0u);
  EXPECT_EQ(stats.emitted_pairs, 15u);
  EXPECT_EQ(stats.candidate_pairs, 30u);  // 15 pairs x 2 shared hub keys
  for (const auto& pair : full) EXPECT_EQ(pair.shared_keys, 2u);
}

TEST(JoinStatsTest, ParallelStatsMatchSerial) {
  const auto items = random_items(1200, 8, 700, 555);
  JoinStats serial_stats;
  JoinStats parallel_stats;
  cooccurrence_join(items, 1, {}, &serial_stats);
  cooccurrence_join_parallel(items, 1, {}, 4, &parallel_stats);
  EXPECT_EQ(serial_stats, parallel_stats);
}

TEST(JoinEdgeCases, EmptyAndSingletonInputs) {
  EXPECT_TRUE(cooccurrence_join({}).empty());
  std::vector<IdSet> one;
  one.emplace_back(std::vector<std::uint32_t>{1, 2, 3});
  EXPECT_TRUE(cooccurrence_join(one).empty());
  std::vector<IdSet> empties(4);
  JoinStats stats;
  EXPECT_TRUE(cooccurrence_join(empties, 1, {}, &stats).empty());
  EXPECT_EQ(stats.num_keys, 0u);
  EXPECT_EQ(stats.postings_entries, 0u);
}

}  // namespace
}  // namespace smash::graph
