#include "core/pruning.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

SmashConfig config_with(std::uint32_t idf = 100) {
  SmashConfig config;
  config.idf_threshold = idf;
  return config;
}

std::uint32_t kept_index(const PreprocessResult& pre, const std::string& name) {
  for (std::uint32_t i = 0; i < pre.kept.size(); ++i) {
    if (pre.agg.server_name(pre.kept[i]) == name) return i;
  }
  throw std::runtime_error("not kept: " + name);
}

TEST(Pruning, RedirectChainCollapsesToLanding) {
  net::Trace trace;
  // hop1 -> hop2 -> landing; clients traverse the whole chain.
  for (const char* c : {"c1", "c2"}) {
    add_request(trace, c, "hop1.cc", "/go.php", "UA", "", 302);
    add_request(trace, c, "hop2.cc", "/go.php", "UA", "hop1.cc", 302);
    add_request(trace, c, "landing.com", "/home.html", "UA", "hop2.cc");
  }
  trace.add_redirect(trace.intern_server("hop1.cc"), trace.intern_server("hop2.cc"));
  trace.add_redirect(trace.intern_server("hop2.cc"),
                     trace.intern_server("landing.com"));
  trace.finalize();

  const auto config = config_with();
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "hop1.cc"), kept_index(pre, "hop2.cc")}};
  const auto result = prune(pre, groups, config);
  // Both hops collapse onto one landing -> group of 1 -> dropped.
  EXPECT_TRUE(result.groups.empty());
  EXPECT_EQ(result.stats.redirect_members_replaced, 2u);
  EXPECT_EQ(result.stats.groups_dropped, 1u);
}

TEST(Pruning, ReferrerGroupCollapsesToLandingServer) {
  net::Trace trace;
  for (const char* c : {"c1", "c2", "c3"}) {
    add_request(trace, c, "landing.com", "/home.html");
    add_request(trace, c, "widget1.net", "/w1.js", "UA", "landing.com");
    add_request(trace, c, "widget2.net", "/w2.js", "UA", "landing.com");
  }
  trace.finalize();

  const auto config = config_with();
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "widget1.net"), kept_index(pre, "widget2.net")}};
  const auto result = prune(pre, groups, config);
  EXPECT_TRUE(result.groups.empty());  // both replaced by one landing
  EXPECT_EQ(result.stats.referrer_members_replaced, 2u);
}

TEST(Pruning, MixedGroupKeepsNonChainMembers) {
  net::Trace trace;
  for (const char* c : {"c1", "c2"}) {
    add_request(trace, c, "mal1.com", "/gate.php");
    add_request(trace, c, "mal2.com", "/gate.php");
    add_request(trace, c, "redir.cc", "/go.php", "UA", "", 302);
  }
  trace.add_redirect(trace.intern_server("redir.cc"), trace.intern_server("mal1.com"));
  trace.finalize();

  const auto config = config_with();
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "mal1.com"), kept_index(pre, "mal2.com"),
       kept_index(pre, "redir.cc")}};
  const auto result = prune(pre, groups, config);
  // redir.cc replaced by its landing mal1.com (already present): group is
  // {mal1, mal2} and survives.
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].size(), 2u);
}

TEST(Pruning, PartialReferrerDominanceDoesNotTrigger) {
  net::Trace trace;
  // widget gets half its traffic with a referrer, half organic: below the
  // 0.8 dominance default, so it is NOT treated as an embedded resource.
  add_request(trace, "c1", "widget.net", "/w.js", "UA", "landing.com");
  add_request(trace, "c2", "widget.net", "/w.js", "UA", "");
  add_request(trace, "c1", "peer.net", "/p.js");
  add_request(trace, "c2", "peer.net", "/p.js");
  trace.finalize();

  const auto config = config_with();
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "widget.net"), kept_index(pre, "peer.net")}};
  const auto result = prune(pre, groups, config);
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].size(), 2u);
  EXPECT_EQ(result.stats.referrer_members_replaced, 0u);
}

TEST(Pruning, RedirectCycleIsLeftAlone) {
  net::Trace trace;
  for (const char* c : {"c1", "c2"}) {
    add_request(trace, c, "loop1.cc", "/a", "UA", "", 302);
    add_request(trace, c, "loop2.cc", "/b", "UA", "", 302);
  }
  trace.add_redirect(trace.intern_server("loop1.cc"), trace.intern_server("loop2.cc"));
  trace.add_redirect(trace.intern_server("loop2.cc"), trace.intern_server("loop1.cc"));
  trace.finalize();

  const auto config = config_with();
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "loop1.cc"), kept_index(pre, "loop2.cc")}};
  const auto result = prune(pre, groups, config);
  // A redirect cycle has no landing; members stay (they're suspicious!).
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].size(), 2u);
}

TEST(Pruning, LandingFilteredByIdfStaysOut) {
  net::Trace trace;
  // Landing is popular (above IDF threshold); embedded widgets collapse to
  // it but it is not re-introduced into the group.
  for (int c = 0; c < 6; ++c) {
    add_request(trace, "u" + std::to_string(c), "popular.com", "/");
  }
  for (const char* c : {"c1", "c2"}) {
    add_request(trace, c, "w1.net", "/w1.js", "UA", "popular.com");
    add_request(trace, c, "w2.net", "/w2.js", "UA", "popular.com");
  }
  trace.finalize();

  auto config = config_with(/*idf=*/5);
  const auto pre = preprocess(trace, config);
  const std::vector<std::vector<std::uint32_t>> groups{
      {kept_index(pre, "w1.net"), kept_index(pre, "w2.net")}};
  const auto result = prune(pre, groups, config);
  EXPECT_TRUE(result.groups.empty());
  EXPECT_EQ(result.stats.groups_dropped, 1u);
}

}  // namespace
}  // namespace smash::core
