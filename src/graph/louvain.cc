#include "graph/louvain.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace smash::graph {

namespace {

// Renumber arbitrary community labels to [0, k) preserving first-seen order.
std::uint32_t renumber(std::vector<std::uint32_t>& labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(labels.size());
  for (auto& label : labels) {
    auto [it, inserted] = remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  return static_cast<std::uint32_t>(remap.size());
}

// One level of local moving. Returns the (renumbered) node -> community map
// and whether anything moved.
struct LevelResult {
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  bool improved = false;
};

LevelResult local_moving(const Graph& g, const LouvainOptions& options) {
  const std::uint32_t n = g.num_nodes();
  const double two_m = 2.0 * g.total_weight();

  LevelResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  if (two_m <= 0.0) {
    result.num_communities = n;
    return result;  // edgeless graph: all singletons
  }

  // tot[c]: sum of weighted degrees of nodes in community c.
  std::vector<double> tot(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) tot[v] = g.weighted_degree(v);

  // Scratch: weight from the current node to each adjacent community.
  std::unordered_map<std::uint32_t, double> weight_to_comm;

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved_this_sweep = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t old_comm = result.community_of[v];
      const double k_v = g.weighted_degree(v);

      weight_to_comm.clear();
      weight_to_comm[old_comm] = 0.0;  // moving back is always an option
      for (const auto& nb : g.neighbors(v)) {
        if (nb.node == v) continue;  // self-loop does not affect the gain delta
        weight_to_comm[result.community_of[nb.node]] += nb.weight;
      }

      // Remove v from its community for the gain computation.
      tot[old_comm] -= k_v;

      // Gain of joining community c (relative, constant terms dropped):
      //   dQ(c) = w(v->c)/m - tot[c]*k_v/(2m^2)
      // We compare 2m*dQ = 2*w(v->c) - tot[c]*k_v/m to avoid divisions.
      std::uint32_t best_comm = old_comm;
      double best_gain =
          2.0 * weight_to_comm[old_comm] - tot[old_comm] * k_v / g.total_weight();
      for (const auto& [comm, w] : weight_to_comm) {
        const double gain = 2.0 * w - tot[comm] * k_v / g.total_weight();
        if (gain > best_gain + options.min_modularity_gain ||
            (gain > best_gain && comm < best_comm)) {
          best_gain = gain;
          best_comm = comm;
        }
      }

      tot[best_comm] += k_v;
      if (best_comm != old_comm) {
        result.community_of[v] = best_comm;
        moved_this_sweep = true;
        result.improved = true;
      }
    }
    if (!moved_this_sweep) break;
  }

  result.num_communities = renumber(result.community_of);
  return result;
}

// Aggregate: one node per community; edge weights summed; intra-community
// weight becomes a self-loop.
Graph aggregate(const Graph& g, const std::vector<std::uint32_t>& community_of,
                std::uint32_t num_communities) {
  GraphBuilder builder(num_communities);
  // Sum weights per (cu, cv) pair; iterate each undirected edge once.
  std::unordered_map<std::uint64_t, double> agg;
  agg.reserve(g.num_edges());
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (nb.node < u) continue;  // visit each undirected edge once
      std::uint32_t cu = community_of[u];
      std::uint32_t cv = community_of[nb.node];
      if (cu > cv) std::swap(cu, cv);
      const std::uint64_t key = (static_cast<std::uint64_t>(cu) << 32) | cv;
      agg[key] += nb.weight;
    }
  }
  for (const auto& [key, weight] : agg) {
    builder.add_edge(static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffu), weight);
  }
  return std::move(builder).build();
}

}  // namespace

std::vector<std::vector<std::uint32_t>> LouvainResult::groups() const {
  std::vector<std::vector<std::uint32_t>> out(num_communities);
  for (std::uint32_t v = 0; v < community_of.size(); ++v) {
    out[community_of[v]].push_back(v);
  }
  return out;
}

LouvainResult louvain(const Graph& g, const LouvainOptions& options) {
  const std::uint32_t n = g.num_nodes();
  LouvainResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  result.num_communities = n;

  Graph level_graph;          // graph at the current level
  const Graph* current = &g;  // avoids copying the input for level 0

  for (int level = 0; level < options.max_levels; ++level) {
    LevelResult lvl = local_moving(*current, options);
    if (!lvl.improved && level > 0) break;

    // Compose: original node -> level community.
    for (std::uint32_t v = 0; v < n; ++v) {
      result.community_of[v] = lvl.community_of[result.community_of[v]];
    }
    result.num_communities = lvl.num_communities;
    result.levels = level + 1;

    if (!lvl.improved) break;  // level 0 with nothing to move
    if (lvl.num_communities == current->num_nodes()) break;  // no merge happened

    level_graph = aggregate(*current, lvl.community_of, lvl.num_communities);
    current = &level_graph;
  }

  result.num_communities = renumber(result.community_of);
  result.modularity = modularity(g, result.community_of);
  return result;
}

LouvainResult louvain_refined(const Graph& g, const LouvainOptions& options) {
  LouvainResult base = louvain(g, options);

  // Work queue of communities to try splitting (member lists over g).
  std::vector<std::vector<std::uint32_t>> queue = base.groups();
  std::vector<std::vector<std::uint32_t>> final_groups;

  while (!queue.empty()) {
    std::vector<std::uint32_t> members = std::move(queue.back());
    queue.pop_back();
    if (members.size() <= 3) {
      final_groups.push_back(std::move(members));
      continue;
    }

    // Induced subgraph over `members`.
    std::unordered_map<std::uint32_t, std::uint32_t> local_id;
    local_id.reserve(members.size());
    for (std::uint32_t i = 0; i < members.size(); ++i) local_id[members[i]] = i;
    GraphBuilder builder(static_cast<std::uint32_t>(members.size()));
    for (auto u : members) {
      for (const auto& nb : g.neighbors(u)) {
        if (nb.node < u) continue;
        auto it = local_id.find(nb.node);
        if (it == local_id.end()) continue;
        builder.add_edge(local_id[u], it->second, nb.weight);
      }
    }
    const Graph sub = std::move(builder).build();
    const LouvainResult split = louvain(sub, options);

    if (split.num_communities <= 1) {
      final_groups.push_back(std::move(members));
      continue;
    }
    // Each part strictly smaller than `members`, so this terminates.
    for (auto& part : split.groups()) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(part.size());
      for (auto local : part) mapped.push_back(members[local]);
      queue.push_back(std::move(mapped));
    }
  }

  LouvainResult out;
  out.community_of.assign(g.num_nodes(), 0);
  out.num_communities = static_cast<std::uint32_t>(final_groups.size());
  out.levels = base.levels;
  for (std::uint32_t c = 0; c < final_groups.size(); ++c) {
    for (auto node : final_groups[c]) out.community_of[node] = c;
  }
  out.modularity = modularity(g, out.community_of);
  return out;
}

double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of) {
  if (community_of.size() != g.num_nodes()) {
    throw std::invalid_argument("modularity: partition size mismatch");
  }
  const double two_m = 2.0 * g.total_weight();
  if (two_m <= 0.0) return 0.0;

  std::uint32_t max_label = 0;
  for (auto c : community_of) max_label = std::max(max_label, c);
  std::vector<double> in(max_label + 1, 0.0);   // 2x intra-community weight
  std::vector<double> tot(max_label + 1, 0.0);  // sum of weighted degrees

  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    tot[community_of[u]] += g.weighted_degree(u);
    for (const auto& nb : g.neighbors(u)) {
      if (community_of[nb.node] == community_of[u]) {
        // Each non-loop edge appears twice in the scan; self-loops appear
        // once but count twice toward `in`.
        in[community_of[u]] += nb.node == u ? 2.0 * nb.weight : nb.weight;
      }
    }
  }

  double q = 0.0;
  for (std::size_t c = 0; c < in.size(); ++c) {
    q += in[c] / two_m - (tot[c] / two_m) * (tot[c] / two_m);
  }
  return q;
}

}  // namespace smash::graph
