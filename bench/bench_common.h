// Shared plumbing for the table/figure benches: dataset presets, pipeline
// sweeps, the Table II/III row layout used by four different tables, and a
// JSON reporter for the perf benches (BENCH_micro.json / BENCH_pipeline.json).
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "graph/graph.h"
#include "synth/world.h"
#include "util/id_set.h"
#include "util/strings.h"
#include "util/table.h"

namespace smash::bench {

// --- shared synthetic kernels workloads -------------------------------------
// One definition for every bench binary: the perf trajectory in
// BENCH_micro.json is only comparable across binaries and PRs if all of
// them generate byte-identical inputs from the same seeds.

// Random key sets with ISP-like sparse overlap (key space = 2x items unless
// overridden). Used by the join micros.
std::vector<util::IdSet> random_key_sets(std::uint32_t items,
                                         std::uint32_t keys_per_item,
                                         std::uint32_t key_space,
                                         std::uint64_t seed);

// Planted cliques with sparse weak bridges — the shape SMASH's dimension
// graphs take (campaign cliques, occasional shared-server bridges). Used by
// the Louvain micros.
graph::Graph planted_clique_graph(std::uint32_t cliques, std::uint32_t size,
                                  double bridge_probability,
                                  std::uint64_t seed);

// The paper's threshold sweep.
inline const std::vector<double> kThresholds{0.5, 0.8, 1.0, 1.5};

// Builds (and caches within the process) a dataset preset by name:
// "2011day", "2012day", "2012week".
const synth::Dataset& dataset(const std::string& preset);

// Runs the pipeline on `ds` with both campaign-class thresholds set to
// `thresh` (the sweep convention of Tables II/III/XI/XII).
core::SmashResult run_at_threshold(const synth::Dataset& ds, double thresh);

// Renders the Table II-style campaign-count sweep for one dataset pair.
// `single_client` selects the Appendix C population (Tables XI).
util::Table campaign_sweep_table(const std::string& title,
                                 const std::vector<std::string>& presets,
                                 bool single_client);

// Renders the Table III-style server-count sweep (Tables III / XII).
util::Table server_sweep_table(const std::string& title,
                               const std::vector<std::string>& presets,
                               bool single_client);

// Evaluation at the paper's operating point (multi 0.8 / single 1.0).
struct OperatingPoint {
  core::SmashResult result;
  core::EvaluationResult multi;
  core::EvaluationResult single;
};
OperatingPoint run_operating_point(const synth::Dataset& ds);

// --- perf reporting ---------------------------------------------------------

// Collects named timing entries (plus free-form numeric counters) and writes
// them as a small self-describing JSON file, e.g. BENCH_micro.json, so
// successive PRs accumulate a perf trajectory. No external JSON dependency.
class JsonReporter {
 public:
  explicit JsonReporter(std::string benchmark_set)
      : benchmark_set_(std::move(benchmark_set)) {}

  void add(const std::string& name, double ms,
           std::map<std::string, double> counters = {});

  // Renders {"benchmark": ..., "entries": [...]} and writes it to `path`.
  // Returns false (after printing to stderr) if the file cannot be written.
  bool write(const std::string& path) const;

  std::string to_json() const;

 private:
  struct Entry {
    std::string name;
    double ms = 0.0;
    std::map<std::string, double> counters;
  };
  std::string benchmark_set_;
  std::vector<Entry> entries_;
};

// Wall-clock time of one fn() call, in milliseconds.
template <typename Fn>
double time_once_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

// Best (minimum) wall-clock time of `repeats` fn() calls, in milliseconds —
// the usual "min of k" estimator that suppresses scheduling noise.
template <typename Fn>
double time_best_ms(int repeats, Fn&& fn) {
  double best = time_once_ms(fn);
  for (int i = 1; i < repeats; ++i) best = std::min(best, time_once_ms(fn));
  return best;
}

}  // namespace smash::bench
