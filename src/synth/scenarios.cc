#include "synth/scenarios.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "dns/dga.h"
#include "dns/domain.h"

namespace smash::synth {

namespace {

constexpr double kPi = 3.14159265358979323846;

StreamEvent request_at(std::uint64_t time_s, std::string client,
                       std::string host, std::string path,
                       std::string user_agent = "Mozilla/5.0",
                       std::string referrer = "") {
  stream::RequestEvent event;
  event.time_s = time_s;
  event.client = std::move(client);
  event.host = std::move(host);
  event.path = std::move(path);
  event.user_agent = std::move(user_agent);
  event.referrer = std::move(referrer);
  return event;
}

StreamEvent resolution_at(std::uint64_t time_s, std::string host,
                          std::string ip) {
  stream::ResolutionEvent event;
  event.time_s = time_s;
  event.host = std::move(host);
  event.ip = std::move(ip);
  return event;
}

}  // namespace

ScenarioBuilder::ScenarioBuilder(std::string name, std::uint64_t seed,
                                 std::uint64_t duration_s)
    : name_(std::move(name)), seed_(seed), duration_s_(std::max<std::uint64_t>(duration_s, 1)) {
  scenario_.name = name_;
  scenario_.truth.duration_s = duration_s_;
}

void ScenarioBuilder::enable_cloud_pool(std::uint32_t addresses) {
  util::Rng rng = util::Rng(seed_).fork("cloud-pool");
  cloud_pool_.clear();
  for (std::uint32_t a = 0; a < std::max<std::uint32_t>(addresses, 1); ++a) {
    cloud_pool_.push_back("198.18." + std::to_string(a / 250) + "." +
                          std::to_string(a % 250));
  }
  // Deterministic but seed-dependent order, so which tenants share which
  // address varies across seeds.
  rng.shuffle(cloud_pool_);
}

std::uint64_t ScenarioBuilder::benign_time(util::Rng& rng,
                                           Arrival arrival) const {
  if (arrival == Arrival::kUniform) return rng.uniform(duration_s_);
  // Diurnal curve: one day/night cycle per 86400 s (or per stream when the
  // stream is shorter), weight peaking mid-cycle with a 0.15 night floor.
  // Rejection sampling keeps the draw deterministic from the rng stream.
  const double period =
      static_cast<double>(std::min<std::uint64_t>(duration_s_, 86400));
  for (;;) {
    const std::uint64_t t = rng.uniform(duration_s_);
    const double phase =
        2.0 * kPi * std::fmod(static_cast<double>(t), period) / period;
    const double weight = 0.15 + 0.85 * 0.5 * (1.0 - std::cos(phase));
    if (rng.uniform01() < weight) return t;
  }
}

void ScenarioBuilder::add_benign_background(const BenignSpec& spec) {
  util::Rng rng = util::Rng(seed_).fork(
      "benign-" + std::to_string(benign_ordinal_++) + "-" + spec.host_prefix);
  // One resolution per server, early in the stream so the window always has
  // it regardless of where the first request lands. Cloud-hosted servers
  // resolve to shared pool addresses, everything else to a private one.
  for (std::uint32_t s = 0; s < spec.servers; ++s) {
    const std::string host = spec.host_prefix + std::to_string(s) + ".org";
    benign_hosts_.push_back(host);
    const bool on_cloud = !cloud_pool_.empty() &&
                          rng.bernoulli(spec.cloud_fraction);
    const std::string ip =
        on_cloud ? cloud_pool_[rng.uniform(cloud_pool_.size())]
                 : "203.0." + std::to_string(s / 250) + "." +
                       std::to_string(s % 250);
    scenario_.events.push_back(resolution_at(
        rng.uniform(std::max<std::uint64_t>(duration_s_ / 8, 1)), host, ip));
    if (s % 7 == 0) {
      whois::Record record;
      record.registrant = "owner-" + spec.host_prefix + std::to_string(s);
      record.email = spec.host_prefix + std::to_string(s) + "@mail.test";
      scenario_.whois.add(host, record);
    }
  }
  for (std::uint32_t v = 0; v < spec.visits; ++v) {
    const auto server = rng.uniform(std::max<std::uint32_t>(spec.servers, 1));
    const std::string base = spec.host_prefix + std::to_string(server) + ".org";
    const std::string host =
        rng.bernoulli(spec.subdomain_fraction) ? "www." + base : base;
    scenario_.events.push_back(request_at(
        benign_time(rng, spec.arrival),
        "user" + std::to_string(rng.uniform(std::max<std::uint32_t>(spec.clients, 1))),
        host, "/page" + std::to_string(rng.uniform(6)) + ".html"));
  }
}

void ScenarioBuilder::add_popular_head(std::uint32_t servers,
                                       std::uint32_t clients) {
  util::Rng rng = util::Rng(seed_).fork("popular-head");
  for (std::uint32_t s = 0; s < servers; ++s) {
    const std::string host = "cdn" + std::to_string(s) + ".com";
    benign_hosts_.push_back(host);
    scenario_.events.push_back(
        resolution_at(rng.uniform(duration_s_ / 8 + 1), host,
                      "198.51.100." + std::to_string(s)));
    for (std::uint32_t c = 0; c < clients; ++c) {
      scenario_.events.push_back(request_at(
          rng.uniform(duration_s_), "cdnuser" + std::to_string(c), host,
          "/asset" + std::to_string(rng.uniform(8)) + ".js"));
    }
  }
}

void ScenarioBuilder::add_flash_crowd(const FlashCrowdSpec& spec) {
  const std::uint32_t ordinal = flash_ordinal_++;
  util::Rng rng = util::Rng(seed_).fork("flash-" + std::to_string(ordinal));
  const std::uint64_t start = std::min(spec.start_s, duration_s_ - 1);
  const std::uint64_t span = std::max<std::uint64_t>(spec.duration_s, 1);

  std::vector<std::string> hosts;
  for (std::uint32_t s = 0; s < spec.servers; ++s) {
    const std::string host =
        spec.host_prefix + std::to_string(ordinal) + "-" + std::to_string(s) +
        ".live";
    hosts.push_back(host);
    benign_hosts_.push_back(host);
    if (spec.shared_hosting) {
      // One platform's pool: every event site resolves to two of three
      // shared addresses, so the IP dimension associates the cluster.
      for (std::uint32_t a = 0; a < 2; ++a) {
        scenario_.events.push_back(resolution_at(
            start, host,
            "198.100." + std::to_string(ordinal % 250) + "." +
                std::to_string((s + a) % 3)));
      }
    } else {
      scenario_.events.push_back(resolution_at(
          start, host,
          "198.100." + std::to_string(ordinal % 250) + "." +
              std::to_string(s)));
    }
  }
  // Every spike client hits every event site within the spike interval;
  // most arrive via the same portal referrer, which is exactly the benign
  // structure the pruning stage exists to discard.
  for (std::uint32_t c = 0; c < spec.clients; ++c) {
    const std::string client =
        "crowd" + std::to_string(ordinal) + "-" + std::to_string(c);
    for (const auto& host : hosts) {
      for (std::uint32_t v = 0; v < spec.visits_per_client; ++v) {
        const std::uint64_t when =
            std::min(start + rng.uniform(span), duration_s_ - 1);
        const std::string referrer =
            rng.bernoulli(spec.referred_fraction) ? "news.portal.example" : "";
        scenario_.events.push_back(request_at(
            when, client, host,
            "/live/clip" + std::to_string(rng.uniform(4)) + ".html",
            "Mozilla/5.0", referrer));
      }
    }
  }
}

void ScenarioBuilder::add_campaign(const CampaignSpec& spec) {
  const std::uint32_t ordinal = campaign_ordinal_++;
  util::Rng rng = util::Rng(seed_).fork("campaign-" + std::to_string(ordinal) +
                                        "-" + spec.label);
  // Zero-duration campaigns emit nothing and leave no truth entry: an
  // interval [t, t) contains no events, so it must not demand recall.
  if (spec.start_s >= spec.end_s || spec.servers == 0 || spec.bots == 0) return;
  const std::uint64_t end = std::min(spec.end_s, duration_s_);
  if (spec.start_s >= end) return;

  std::vector<std::string> hosts;
  if (spec.naming == CampaignSpec::Naming::kDga) {
    hosts = dns::zeus_style_family(rng, spec.servers);
  } else {
    for (std::uint32_t s = 0; s < spec.servers; ++s) {
      hosts.push_back(spec.label + "-s" + std::to_string(s) + ".biz");
    }
  }

  // Hosting profile: cloud pool (shared with benign tenants), campaign
  // flux pool (shared among siblings only), or fully disjoint addresses.
  std::vector<std::vector<std::string>> ips(hosts.size());
  if (spec.cloud_fronted && !cloud_pool_.empty()) {
    for (auto& server_ips : ips) {
      server_ips.push_back(cloud_pool_[rng.uniform(cloud_pool_.size())]);
      server_ips.push_back(cloud_pool_[rng.uniform(cloud_pool_.size())]);
    }
  } else if (spec.shared_ips) {
    dns::FluxIpPool flux(rng.fork("flux"),
                         std::max<std::size_t>(2, hosts.size() / 3));
    for (auto& server_ips : ips) server_ips = flux.draw(2);
  } else {
    for (auto& server_ips : ips) server_ips.push_back(dns::random_ipv4(rng));
  }

  if (spec.shared_whois) {
    whois::Record record;
    record.registrant = "actor-" + spec.label;
    record.email = spec.label + "@mail.test";
    record.name_servers = "ns1." + spec.label + ".example,ns2." + spec.label +
                          ".example";
    for (const auto& host : hosts) scenario_.whois.add(host, record);
  }

  StreamCampaignTruth truth;
  truth.bots = spec.bots;
  truth.start_s = spec.start_s;
  truth.end_s = end;
  for (const auto& host : hosts) {
    truth.servers.push_back(dns::effective_2ld(host));
  }

  // Each bot polls every campaign server on the configured cadence; servers
  // are re-resolved every tick (bots re-query DNS) so any window overlapping
  // the active interval sees the hosting signal, not just the activation
  // window. Jitter never escapes [start_s, end_s).
  const std::uint64_t poll = std::max<std::uint32_t>(spec.poll_interval_s, 1);
  const std::uint64_t jitter = std::max<std::uint64_t>(spec.request_jitter_s, 1);
  for (std::uint64_t t = spec.start_s; t < end; t += poll) {
    for (std::size_t s = 0; s < hosts.size(); ++s) {
      for (const auto& ip : ips[s]) {
        scenario_.events.push_back(resolution_at(t, hosts[s], ip));
      }
    }
    for (std::uint32_t b = 0; b < spec.bots; ++b) {
      const std::string bot = "bot-" + spec.label + "-" + std::to_string(b);
      for (std::size_t s = 0; s < hosts.size(); ++s) {
        const auto when = std::min(t + rng.uniform(jitter), end - 1);
        const std::string path =
            spec.shared_filename
                ? "/gate.php?id=" + std::to_string(b) + "&c=" +
                      std::to_string(ordinal)
                : "/g" + std::to_string(s) + "x.php?id=" + std::to_string(b);
        scenario_.events.push_back(request_at(when, bot, hosts[s], path, "-"));
      }
    }
  }
  scenario_.truth.campaigns.push_back(std::move(truth));
}

Scenario ScenarioBuilder::build() && {
  // Stable by time: events at the same second keep generation order, so the
  // stream is fully deterministic.
  std::stable_sort(scenario_.events.begin(), scenario_.events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return event_time(a) < event_time(b);
                   });
  std::set<std::string> campaign_2lds;
  for (const auto& campaign : scenario_.truth.campaigns) {
    campaign_2lds.insert(campaign.servers.begin(), campaign.servers.end());
  }
  std::set<std::string> benign;
  for (const auto& host : benign_hosts_) {
    const std::string label = dns::effective_2ld(host);
    if (!campaign_2lds.count(label)) benign.insert(label);
  }
  scenario_.truth.benign_2lds.assign(benign.begin(), benign.end());
  return std::move(scenario_);
}

// --- the matrix --------------------------------------------------------------

namespace {

struct MatrixShape {
  std::uint64_t duration_s;
  std::uint32_t epoch_seconds;
  std::uint32_t window_epochs;
  std::uint32_t idf_threshold;
  BenignSpec benign;  // the shared background most scenarios start from
};

MatrixShape matrix_shape(bool smoke) {
  MatrixShape shape;
  if (smoke) {
    shape.duration_s = 10800;  // 18 epochs of 600 s
    shape.epoch_seconds = 600;
    shape.window_epochs = 6;
    shape.idf_threshold = 100;
    shape.benign = BenignSpec{.servers = 150, .clients = 100, .visits = 2500};
  } else {
    shape.duration_s = 86400;  // one day, 24 epochs
    shape.epoch_seconds = 3600;
    shape.window_epochs = 24;
    shape.idf_threshold = 200;
    shape.benign = BenignSpec{.servers = 600, .clients = 400, .visits = 20000};
  }
  return shape;
}

}  // namespace

std::vector<ScenarioCase> scenario_matrix(bool smoke, std::uint64_t seed) {
  const MatrixShape shape = matrix_shape(smoke);
  const std::uint64_t d = shape.duration_s;
  const std::uint32_t epoch = shape.epoch_seconds;
  std::vector<ScenarioCase> cases;

  const auto make_case = [&](Scenario scenario) {
    ScenarioCase c;
    c.scenario = std::move(scenario);
    c.epoch_seconds = shape.epoch_seconds;
    c.window_epochs = shape.window_epochs;
    c.idf_threshold = shape.idf_threshold;
    return c;
  };

  // 1. Clean baseline: three staggered labeled C&C campaigns over uniform
  // benign browsing plus a popular head that trips the IDF filter.
  {
    ScenarioBuilder b("staggered_campaigns", seed * 31 + 1, d);
    b.add_benign_background(shape.benign);
    b.add_popular_head(2, shape.idf_threshold + 50);
    for (std::uint32_t k = 0; k < 3; ++k) {
      CampaignSpec c;
      c.label = "stag" + std::to_string(k);
      c.servers = 5;
      c.bots = 4;
      c.start_s = (k + 1) * d / 5;
      c.end_s = c.start_s + d * 35 / 100;
      c.poll_interval_s = epoch / 2;
      c.request_jitter_s = epoch / 8;
      b.add_campaign(c);
    }
    cases.push_back(make_case(std::move(b).build()));
  }

  // 2. Slow burn straddling window eviction: one long-cadence campaign whose
  // active interval outlives the (shortened) window, so detection must
  // survive epochs of the campaign falling off the back of the window.
  {
    ScenarioBuilder b("slow_burn_window_straddle", seed * 31 + 2, d);
    BenignSpec benign = shape.benign;
    benign.visits = benign.visits / 2;
    b.add_benign_background(benign);
    CampaignSpec c;
    c.label = "slowburn";
    c.servers = 6;
    c.bots = 5;
    c.start_s = d / 10;
    c.end_s = d * 9 / 10;
    c.poll_interval_s = epoch * 3;  // one poll tick every third epoch
    c.request_jitter_s = epoch;
    b.add_campaign(c);
    auto scenario_case = make_case(std::move(b).build());
    scenario_case.window_epochs = smoke ? 6 : 12;  // window < active interval
    cases.push_back(std::move(scenario_case));
  }

  // 3. CDN/cloud-fronted: campaigns resolve to the same shared cloud pool a
  // third of the benign background lives on, so the IP dimension alone
  // cannot separate them from benign tenants.
  {
    ScenarioBuilder b("cdn_cloud_fronted", seed * 31 + 3, d);
    b.enable_cloud_pool(12);
    BenignSpec benign = shape.benign;
    benign.cloud_fraction = 0.35;
    b.add_benign_background(benign);
    for (std::uint32_t k = 0; k < 2; ++k) {
      CampaignSpec c;
      c.label = "cloud" + std::to_string(k);
      c.servers = 5;
      c.bots = 4;
      c.start_s = (k == 0) ? d / 6 : d / 2;
      c.end_s = c.start_s + d * 4 / 10;
      c.poll_interval_s = epoch / 2;
      c.request_jitter_s = epoch / 8;
      c.cloud_fronted = true;
      b.add_campaign(c);
    }
    cases.push_back(make_case(std::move(b).build()));
  }

  // 4. DGA burst: a short, dense burst of zeus-style sibling domains with
  // flux hosting and a shared gate file but no registration signal.
  {
    ScenarioBuilder b("dga_burst", seed * 31 + 4, d);
    b.add_benign_background(shape.benign);
    CampaignSpec c;
    c.label = "dga";
    c.servers = 8;
    c.bots = 5;
    c.start_s = d * 4 / 10;
    c.end_s = c.start_s + 2ull * epoch;
    c.poll_interval_s = std::max<std::uint32_t>(epoch / 3, 1);
    c.request_jitter_s = epoch / 10;
    c.naming = CampaignSpec::Naming::kDga;
    c.shared_whois = false;
    b.add_campaign(c);
    cases.push_back(make_case(std::move(b).build()));
  }

  // 5. Flash crowd, benign only: popularity spikes co-visited by herds of
  // one-off clients below the IDF threshold. Anything flagged here is a
  // false positive by construction.
  {
    ScenarioBuilder b("flash_crowd_benign", seed * 31 + 5, d);
    b.add_benign_background(shape.benign);
    FlashCrowdSpec crowd;
    crowd.servers = 5;
    crowd.clients = shape.idf_threshold - 20;
    crowd.visits_per_client = 2;
    crowd.start_s = d / 4;
    crowd.duration_s = 2ull * epoch;
    b.add_flash_crowd(crowd);
    FlashCrowdSpec second = crowd;
    second.start_s = d * 6 / 10;
    second.servers = 4;
    b.add_flash_crowd(second);
    cases.push_back(make_case(std::move(b).build()));
  }

  // 6. Diurnal load + jittered polling: the benign curve concentrates load
  // mid-day and campaign requests smear across whole poll intervals.
  {
    ScenarioBuilder b("diurnal_jitter", seed * 31 + 6, d);
    BenignSpec benign = shape.benign;
    benign.arrival = Arrival::kDiurnal;
    b.add_benign_background(benign);
    b.add_popular_head(2, shape.idf_threshold + 50);
    for (std::uint32_t k = 0; k < 2; ++k) {
      CampaignSpec c;
      c.label = "diur" + std::to_string(k);
      c.servers = 5;
      c.bots = 4;
      c.start_s = (k == 0) ? d * 2 / 10 : d * 55 / 100;
      c.end_s = c.start_s + d * 35 / 100;
      c.poll_interval_s = epoch / 2;
      c.request_jitter_s = epoch / 2;  // full-interval smear
      b.add_campaign(c);
    }
    cases.push_back(make_case(std::move(b).build()));
  }

  // 7. Combined stress: diurnal cloud-tenant background, a flash crowd, a
  // DGA burst and a cloud-fronted slow burn in one stream.
  {
    ScenarioBuilder b("combined_stress", seed * 31 + 7, d);
    b.enable_cloud_pool(12);
    BenignSpec benign = shape.benign;
    benign.arrival = Arrival::kDiurnal;
    benign.cloud_fraction = 0.25;
    b.add_benign_background(benign);
    FlashCrowdSpec crowd;
    crowd.servers = 4;
    crowd.clients = shape.idf_threshold - 20;
    crowd.start_s = d * 3 / 10;
    crowd.duration_s = 2ull * epoch;
    b.add_flash_crowd(crowd);
    CampaignSpec dga;
    dga.label = "burst";
    dga.servers = 8;
    dga.bots = 5;
    dga.start_s = d / 2;
    dga.end_s = dga.start_s + 2ull * epoch;
    dga.poll_interval_s = std::max<std::uint32_t>(epoch / 3, 1);
    dga.request_jitter_s = epoch / 10;
    dga.naming = CampaignSpec::Naming::kDga;
    dga.shared_whois = false;
    b.add_campaign(dga);
    CampaignSpec slow;
    slow.label = "cloudburn";
    slow.servers = 6;
    slow.bots = 5;
    slow.start_s = d / 10;
    slow.end_s = d * 9 / 10;
    slow.poll_interval_s = epoch * 3;
    slow.request_jitter_s = epoch;
    slow.cloud_fronted = true;
    b.add_campaign(slow);
    auto scenario_case = make_case(std::move(b).build());
    scenario_case.window_epochs = smoke ? 6 : 12;
    cases.push_back(std::move(scenario_case));
  }

  return cases;
}

net::Trace to_batch_trace(const Scenario& scenario) {
  return events_to_trace(scenario.events, 0, scenario.truth.duration_s);
}

}  // namespace smash::synth
