// Unit tests for the verification taxonomy on hand-crafted worlds — the
// Tables II/III row semantics, independent of the big synthetic world.
#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "test_helpers.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

// A world with one 10-server herd (2 bots, shared gate.php + shared IPs so
// it clears thresh 0.8) whose confirmation we vary per test.
struct Fixture {
  net::Trace trace;
  whois::Registry registry;
  ids::SignatureEngine signatures;
  ids::Blacklist blacklist;
  ids::GroundTruth truth;

  Fixture() {
    for (int s = 0; s < 10; ++s) {
      const std::string host = "evil" + std::to_string(s) + ".com";
      for (const char* bot : {"bot1", "bot2"}) {
        add_request(trace, bot, host, "/m/gate.php?bid=1&data=2", "BotUA");
      }
      resolve(trace, host, "6.6.6.1");
    }
    add_request(trace, "u1", "benignA.org", "/pa.html");
    add_request(trace, "u2", "benignB.org", "/pb.html");
    trace.finalize();
    blacklist.add_primary_source("mdl");

    ids::CampaignTruth campaign;
    campaign.name = "herd";
    campaign.kind = ids::CampaignKind::kCnc;
    for (int s = 0; s < 10; ++s) {
      campaign.servers.push_back("evil" + std::to_string(s) + ".com");
    }
    truth.add_campaign(std::move(campaign));
  }

  SmashResult run() const {
    SmashConfig config;
    config.idf_threshold = 100;
    return SmashPipeline(config).run(trace, registry);
  }

  EvaluationResult evaluate(const SmashResult& result) const {
    const Evaluator evaluator(trace, signatures, blacklist, truth);
    return evaluator.evaluate(result, /*single_client=*/false);
  }
};

TEST(Evaluation, UnconfirmedAliveHerdIsFalsePositive) {
  Fixture fx;
  const auto result = fx.run();
  const auto eval = fx.evaluate(result);
  ASSERT_EQ(eval.campaign_counts.smash, 1);
  EXPECT_EQ(eval.campaign_counts.false_positives, 1);
  EXPECT_EQ(eval.campaign_counts.fp_updated, 1);  // not a noise herd
  EXPECT_EQ(eval.server_counts.false_positives, 10);
  EXPECT_GT(eval.fp_rate, 0.0);
  // Ground-truth diagnostics still know it is truly malicious.
  EXPECT_EQ(eval.detected_truly_malicious, 10);
}

TEST(Evaluation, FullIdsCoverageIsTotal) {
  Fixture fx;
  fx.signatures.add({"Trojan.Gate", "gate.php", "", "", ids::Vintage::k2012});
  const auto result = fx.run();
  const auto eval = fx.evaluate(result);
  EXPECT_EQ(eval.campaign_counts.ids2012_total, 1);
  EXPECT_EQ(eval.server_counts.ids2012, 10);
  EXPECT_EQ(eval.server_counts.false_positives, 0);
}

TEST(Evaluation, Ids2013OnlyIsZeroDay) {
  Fixture fx;
  fx.signatures.add({"Trojan.Gate", "gate.php", "", "", ids::Vintage::k2013});
  const auto result = fx.run();
  const auto eval = fx.evaluate(result);
  EXPECT_EQ(eval.campaign_counts.ids2012_total, 0);
  EXPECT_EQ(eval.campaign_counts.ids2013_total, 1);
  EXPECT_EQ(eval.server_counts.ids2013, 10);
  EXPECT_EQ(eval.server_counts.ids2012, 0);
}

TEST(Evaluation, BlacklistedSubsetMakesOthersNewServers) {
  Fixture fx;
  fx.blacklist.list("mdl", "evil0.com");
  fx.blacklist.list("mdl", "evil1.com");
  const auto result = fx.run();
  const auto eval = fx.evaluate(result);
  EXPECT_EQ(eval.campaign_counts.blacklist_partial, 1);
  EXPECT_EQ(eval.server_counts.blacklist, 2);
  // The rest share gate.php + UA with the confirmed members.
  EXPECT_EQ(eval.server_counts.new_servers, 8);
  EXPECT_EQ(eval.server_counts.false_positives, 0);
}

TEST(Evaluation, DeadHerdIsSuspicious) {
  Fixture fx;
  for (int s = 0; s < 6; ++s) fx.truth.mark_dead("evil" + std::to_string(s) + ".com");
  const auto result = fx.run();
  const auto eval = fx.evaluate(result);
  EXPECT_EQ(eval.campaign_counts.suspicious, 1);
  EXPECT_EQ(eval.server_counts.suspicious, 10);
  EXPECT_EQ(eval.campaign_counts.false_positives, 0);
}

TEST(Evaluation, ErrorHeavyHerdIsSuspiciousWithoutOracle) {
  // Same herd but most requests return 404: "suspicious" via status codes
  // alone (paper §V-A1's error-code check).
  Fixture fx;
  net::Trace trace;
  for (int s = 0; s < 10; ++s) {
    const std::string host = "dead" + std::to_string(s) + ".com";
    for (const char* bot : {"bot1", "bot2"}) {
      add_request(trace, bot, host, "/m/gate.php?bid=1", "BotUA", "", 404);
    }
    resolve(trace, host, "6.6.6.1");
  }
  trace.finalize();
  SmashConfig config;
  config.idf_threshold = 100;
  const auto result = SmashPipeline(config).run(trace, fx.registry);
  const Evaluator evaluator(trace, fx.signatures, fx.blacklist, fx.truth);
  const auto eval = evaluator.evaluate(result, false);
  ASSERT_EQ(eval.campaign_counts.smash, 1);
  EXPECT_EQ(eval.campaign_counts.suspicious, 1);
}

TEST(Evaluation, IdsPartialBeatsBlacklistInPrecedence) {
  Fixture fx;
  fx.signatures.add({"Trojan.Gate", "gate.php", "BotUA", "", ids::Vintage::k2012});
  fx.blacklist.list("mdl", "evil0.com");
  // All servers match the signature, so this is ids2012_total; remove the
  // UA from half the herd to force partial.
  net::Trace trace;
  for (int s = 0; s < 10; ++s) {
    const std::string host = "evil" + std::to_string(s) + ".com";
    for (const char* bot : {"bot1", "bot2"}) {
      add_request(trace, bot, host, "/m/gate.php?bid=1",
                  s < 4 ? "BotUA" : "OtherUA");
    }
    resolve(trace, host, "6.6.6.1");
  }
  trace.finalize();
  SmashConfig config;
  config.idf_threshold = 100;
  const auto result = SmashPipeline(config).run(trace, fx.registry);
  const Evaluator evaluator(trace, fx.signatures, fx.blacklist, fx.truth);
  const auto eval = evaluator.evaluate(result, false);
  EXPECT_EQ(eval.campaign_counts.ids2012_partial, 1);
  EXPECT_EQ(eval.campaign_counts.blacklist_partial, 0);  // IDS takes precedence
}

TEST(Evaluation, FalseNegativesGroupedByThreat) {
  Fixture fx;
  // Signature hits a server SMASH cannot see as a herd (unique client, no
  // secondary dims): it must appear in the false-negative report.
  net::Trace trace = fx.trace;  // copy: has the detectable herd
  add_request(trace, "solo", "lonely.biz", "/only/gate.php?bid=9");
  trace.finalize();
  fx.signatures.add({"Trojan.Gate", "gate.php", "", "", ids::Vintage::k2012});
  SmashConfig config;
  config.idf_threshold = 100;
  const auto result = SmashPipeline(config).run(trace, fx.registry);
  const Evaluator evaluator(trace, fx.signatures, fx.blacklist, fx.truth);
  const auto eval = evaluator.evaluate(result, false);
  bool lonely_missed = false;
  for (const auto& group : eval.false_negatives) {
    for (const auto& server : group.missed_servers) {
      lonely_missed |= server == "lonely.biz";
      EXPECT_EQ(group.threat_id, "Trojan.Gate");
    }
  }
  EXPECT_TRUE(lonely_missed);
}

TEST(Evaluation, WhoisRoundTripTsv) {
  whois::Registry registry;
  registry.add_proxy_value("PROXY");
  whois::Record rec;
  rec.registrant = "alice";
  rec.email = "a@x.com";
  registry.add("a.com", rec);
  const auto path = std::string("/tmp/smash_whois_test.tsv");
  registry.write_tsv(path);
  const auto loaded = whois::Registry::read_tsv(path);
  std::remove(path.c_str());
  ASSERT_NE(loaded.find("a.com"), nullptr);
  EXPECT_EQ(loaded.find("a.com")->registrant, "alice");
  EXPECT_EQ(loaded.find("a.com")->address, "");  // "-" round-trips to empty
  EXPECT_TRUE(loaded.is_proxy_value("PROXY"));
}

}  // namespace
}  // namespace smash::core
