// Codec-level tests for the verdict server's wire framing
// (serve/frame.h): round-trips, torn/short reads through FrameDecoder,
// loud rejection of oversized frames, and partial-batch answers. No
// sockets anywhere — the codec is plain bytes in, plain structs out.
#include "serve/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/binary.h"

namespace smash::serve {
namespace {

RequestFrame make_batch(std::uint64_t id, std::size_t count) {
  RequestFrame request;
  request.type = count == 1 ? FrameType::kLookup : FrameType::kBatch;
  request.request_id = id;
  for (std::size_t i = 0; i < count; ++i) {
    LookupKey key;
    key.host = "bot" + std::to_string(i) + ".example.com";
    if (i % 2 == 1) key.server_ip = "10.0.0." + std::to_string(i);
    request.lookups.push_back(key);
  }
  return request;
}

// Strips the u32 length prefix, returning just the payload.
std::string payload_of(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

TEST(ServeFrame, SingleLookupRoundTrip) {
  const RequestFrame request = make_batch(42, 1);
  std::string bytes;
  encode_request(bytes, request);

  FrameDecoder decoder;
  decoder.feed(bytes);
  std::string payload;
  ASSERT_TRUE(decoder.next(payload));
  const auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kLookup);
  EXPECT_EQ(decoded->request_id, 42u);
  ASSERT_EQ(decoded->lookups.size(), 1u);
  EXPECT_EQ(decoded->lookups[0].host, "bot0.example.com");
  EXPECT_TRUE(decoded->lookups[0].server_ip.empty());
  EXPECT_FALSE(decoder.next(payload)) << "one frame in, one frame out";
}

TEST(ServeFrame, BatchRoundTripPreservesEveryEntry) {
  const RequestFrame request = make_batch(7, 20);
  std::string bytes;
  encode_request(bytes, request);
  const auto decoded = decode_request(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kBatch);
  ASSERT_EQ(decoded->lookups.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(decoded->lookups[i].host, request.lookups[i].host);
    EXPECT_EQ(decoded->lookups[i].server_ip, request.lookups[i].server_ip);
  }
}

TEST(ServeFrame, ResponseRoundTripWithStatusAndAnswers) {
  ResponseFrame response;
  response.type = FrameType::kBatch;
  response.request_id = 99;
  response.status = FrameStatus::kStale;
  response.snapshot_sequence = 17;
  response.snapshot_age_ms = 1250;
  for (int i = 0; i < 3; ++i) {
    AnswerEntry entry;
    entry.malicious = i != 1;
    entry.campaign = static_cast<std::uint32_t>(i);
    entry.campaign_servers = 6;
    entry.window_requests = 1000 + static_cast<std::uint64_t>(i);
    entry.active_epochs = 4;
    response.answers.push_back(entry);
  }
  std::string bytes;
  encode_response(bytes, response);
  const auto decoded = decode_response(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, FrameStatus::kStale);
  EXPECT_EQ(decoded->snapshot_sequence, 17u);
  EXPECT_EQ(decoded->snapshot_age_ms, 1250u);
  ASSERT_EQ(decoded->answers.size(), 3u);
  EXPECT_TRUE(decoded->answers[0].malicious);
  EXPECT_FALSE(decoded->answers[1].malicious);
  EXPECT_EQ(decoded->answers[2].window_requests, 1002u);
}

TEST(ServeFrame, PartialBatchAnswerIsExplicitNotPadded) {
  // A 10-lookup batch answered 4 deep (the server shed mid-batch): the
  // response carries exactly 4 answers and decodes that way — the
  // shortfall is visible to the client, never padded with fakes.
  ResponseFrame response;
  response.type = FrameType::kBatch;
  response.request_id = 5;
  response.status = FrameStatus::kOk;
  response.answers.resize(4);
  std::string bytes;
  encode_response(bytes, response);
  const auto decoded = decode_response(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers.size(), 4u);

  // A rejected response carries zero answers.
  ResponseFrame rejected;
  rejected.request_id = 6;
  rejected.status = FrameStatus::kRejected;
  bytes.clear();
  encode_response(bytes, rejected);
  const auto decoded_rejected = decode_response(payload_of(bytes));
  ASSERT_TRUE(decoded_rejected.has_value());
  EXPECT_EQ(decoded_rejected->status, FrameStatus::kRejected);
  EXPECT_TRUE(decoded_rejected->answers.empty());
}

TEST(ServeFrame, TornReadsReassembleByteByByte) {
  // Three frames fed one byte at a time: the decoder must never yield a
  // frame early, never lose one, and keep byte-exact payloads.
  std::string bytes;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    encode_request(bytes, make_batch(id, id == 2 ? 5 : 1));
  }
  FrameDecoder decoder;
  std::vector<RequestFrame> seen;
  std::string payload;
  for (const char byte : bytes) {
    decoder.feed(std::string_view(&byte, 1));
    while (decoder.next(payload)) {
      const auto decoded = decode_request(payload);
      ASSERT_TRUE(decoded.has_value());
      seen.push_back(*decoded);
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].request_id, 1u);
  EXPECT_EQ(seen[1].request_id, 2u);
  EXPECT_EQ(seen[1].lookups.size(), 5u);
  EXPECT_EQ(seen[2].request_id, 3u);
}

TEST(ServeFrame, TornReadsAcrossUnevenChunks) {
  std::string bytes;
  for (std::uint64_t id = 0; id < 10; ++id) {
    encode_request(bytes, make_batch(id, 3));
  }
  // Chunk sizes that never align with frame boundaries.
  FrameDecoder decoder;
  std::size_t fed = 0, frames = 0;
  std::string payload;
  const std::size_t chunks[] = {1, 7, 3, 13, 31, 64, 5};
  std::size_t c = 0;
  while (fed < bytes.size()) {
    const std::size_t n = std::min(chunks[c++ % 7], bytes.size() - fed);
    decoder.feed(std::string_view(bytes).substr(fed, n));
    fed += n;
    while (decoder.next(payload)) {
      ASSERT_TRUE(decode_request(payload).has_value());
      ++frames;
    }
  }
  EXPECT_EQ(frames, 10u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ServeFrame, OversizedFrameFailsLoudlyAndStaysFailed) {
  std::string bytes;
  util::put_u32(bytes, kMaxFramePayloadBytes + 1);  // hostile length prefix
  FrameDecoder decoder;
  decoder.feed(bytes);
  std::string payload;
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("exceeds"), std::string::npos);
  // Once frame boundaries are lost the decoder must not resynchronize on
  // garbage: further feeds are dead.
  std::string good;
  encode_request(good, make_batch(1, 1));
  decoder.feed(good);
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_TRUE(decoder.failed());
}

TEST(ServeFrame, MaxSizePayloadIsAcceptedBoundaryExact) {
  // Exactly kMaxFramePayloadBytes must pass (the bound is inclusive);
  // the decoder hands the payload back byte-exact even though it is not
  // a valid request — framing and request parsing are separate layers.
  std::string bytes;
  util::put_u32(bytes, kMaxFramePayloadBytes);
  bytes.append(kMaxFramePayloadBytes, 'x');
  FrameDecoder decoder;
  decoder.feed(bytes);
  std::string payload;
  ASSERT_TRUE(decoder.next(payload));
  EXPECT_EQ(payload.size(), kMaxFramePayloadBytes);
  EXPECT_FALSE(decoder.failed());
  EXPECT_FALSE(decode_request(payload).has_value())
      << "garbage payload parses as no request";
}

TEST(ServeFrame, MalformedPayloadsAreRejectedWithReasons) {
  std::string error;

  // Truncated header.
  EXPECT_FALSE(decode_request("\x01", &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);

  // Unknown type.
  std::string payload;
  util::put_u8(payload, 9);
  util::put_u64(payload, 1);
  util::put_u16(payload, 1);
  EXPECT_FALSE(decode_request(payload, &error).has_value());
  EXPECT_NE(error.find("unknown"), std::string::npos);

  // Zero-count batch.
  payload.clear();
  util::put_u8(payload, static_cast<std::uint8_t>(FrameType::kBatch));
  util::put_u64(payload, 1);
  util::put_u16(payload, 0);
  EXPECT_FALSE(decode_request(payload, &error).has_value());
  EXPECT_NE(error.find("count"), std::string::npos);

  // kLookup claiming 2 entries.
  payload.clear();
  util::put_u8(payload, static_cast<std::uint8_t>(FrameType::kLookup));
  util::put_u64(payload, 1);
  util::put_u16(payload, 2);
  EXPECT_FALSE(decode_request(payload, &error).has_value());

  // Entry truncated mid-string.
  RequestFrame request = make_batch(3, 2);
  std::string frame;
  encode_request(frame, request);
  std::string cut = frame.substr(4, frame.size() - 10);
  EXPECT_FALSE(decode_request(cut, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);

  // Trailing bytes after a valid request.
  std::string padded = frame.substr(4) + "zz";
  EXPECT_FALSE(decode_request(padded, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);

  // Response with an unknown status byte.
  ResponseFrame response;
  response.answers.resize(1);
  std::string rbytes;
  encode_response(rbytes, response);
  std::string rpayload = payload_of(rbytes);
  rpayload[9] = 7;  // status byte (after type + request_id)
  EXPECT_FALSE(decode_response(rpayload, &error).has_value());
  EXPECT_NE(error.find("status"), std::string::npos);
}

TEST(ServeFrame, DecoderBufferCompactionKeepsStreamIntact) {
  // Interleave feeds and drains long enough that the lazy compaction in
  // FrameDecoder::feed must trigger several times.
  FrameDecoder decoder;
  std::string payload;
  std::uint64_t next_id = 0, seen = 0;
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    encode_request(bytes, make_batch(next_id++, 2));
    // Feed in two halves so a partial frame regularly straddles feeds.
    const std::size_t half = bytes.size() / 2;
    decoder.feed(std::string_view(bytes).substr(0, half));
    while (decoder.next(payload)) {
      const auto decoded = decode_request(payload);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->request_id, seen++);
    }
    decoder.feed(std::string_view(bytes).substr(half));
    while (decoder.next(payload)) {
      const auto decoded = decode_request(payload);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(decoded->request_id, seen++);
    }
  }
  EXPECT_EQ(seen, 200u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace smash::serve
