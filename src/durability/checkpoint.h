// Periodic checkpoints of sealed-epoch engine state, so recovery replays
// only the WAL tail written after the newest valid checkpoint instead of
// the whole window's worth of segments.
//
// A checkpoint is one atomically-installed blob (written to ckpt.tmp,
// fsynced per policy, renamed into place):
//
//   [magic "SMCK"][u32 version][u32 crc32c(body)][u32 body_len][body]
//
// The body carries the full single-writer engine state at an exact WAL
// position: config fingerprint, epoch-close counter, ingest counters, the
// window's sealed shard traces (journal-order serialized, net::Trace
// binary events), the *open* shard's trace (the event that seals an epoch
// lands in the next epoch's segment before the checkpoint is taken, so the
// open shard is part of the state), the per-2LD window aggregates (sorted;
// recovery rebuilds them from the shards and cross-checks this list), and
// per-shard ShardPre fingerprints (recovery rebuilds each shard's
// preprocessed cache deterministically from its trace and cross-checks —
// core::shard_pre_fingerprint).
//
// replay_segment/replay_offset are the WAL position the state corresponds
// to: recovery loads the newest CRC-valid checkpoint, then replays records
// from exactly there. A checkpoint that fails its CRC (or was torn before
// the rename) is skipped in favor of the previous one + its longer tail —
// the WAL, not the checkpoint, is the source of truth.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "durability/options.h"
#include "stream/ingest.h"

namespace smash::durability {

struct CheckpointShard {
  stream::EpochId epoch = 0;
  // core::shard_pre_fingerprint of the sealed shard's preprocessed cache.
  std::uint64_t pre_fingerprint = 0;
  // net::Trace::serialize_events of the shard trace.
  std::string trace_bytes;
};

struct CheckpointAggregate {
  std::string host_2ld;
  std::uint64_t requests = 0;
  std::uint64_t error_requests = 0;
  std::uint32_t active_epochs = 0;
};

struct CheckpointState {
  // Config fingerprint: recovery refuses a checkpoint taken under a
  // different epoch geometry (the WAL tail would be re-bucketed).
  std::uint32_t epoch_seconds = 0;
  std::uint32_t window_epochs = 0;
  bool drop_late_events = true;

  // Engine counters.
  std::uint64_t closes_total = 0;
  // Records ever appended to the WAL when this state was captured (events
  // + seal markers); recovery adds its replayed-tail count to this so the
  // corruption fuzzer can map recovered state back to a schedule prefix.
  std::uint64_t records_logged = 0;

  // Ingestor position.
  bool started = false;
  stream::EpochId open_epoch = 0;
  stream::IngestStats ingest_stats{};

  // WAL position the state corresponds to.
  std::uint64_t replay_segment = 1;
  std::uint64_t replay_offset = 0;

  // Sealed window, oldest epoch first, then the open shard's trace.
  std::vector<CheckpointShard> window;
  std::string open_trace_bytes;

  // Cross-check copy of WindowAggregates, sorted by 2LD.
  std::uint64_t window_requests = 0;
  std::vector<CheckpointAggregate> aggregates;
};

// ckpt-<closes>-<replay_segment>.bin; both fields zero-padded so lexical
// sort = (closes, segment) sort, and pruning can pick replay floors without
// opening files.
std::string checkpoint_file_name(std::uint64_t closes, std::uint64_t replay_segment);
struct CheckpointFileName {
  std::uint64_t closes = 0;
  std::uint64_t replay_segment = 0;
};
std::optional<CheckpointFileName> parse_checkpoint_file_name(std::string_view name);

std::string encode_checkpoint(const CheckpointState& state);
// nullopt on any framing/CRC/decode violation (a torn or tampered file).
std::optional<CheckpointState> decode_checkpoint(std::string_view bytes);

// Atomic install: ckpt.tmp -> write -> fsync (policy != kOff) -> rename ->
// dir fsync. Failpoint sites: "ckpt.write", "ckpt.fsync", "ckpt.rename".
void write_checkpoint_file(const std::string& dir, const CheckpointState& state,
                           FsyncPolicy policy);

}  // namespace smash::durability
