#!/usr/bin/env python3
"""Fail on broken relative links in the repo's Markdown files.

Scans every *.md under the repo root (skipping build trees and .git),
extracts inline links/images ``[text](target)``, and checks that every
relative target resolves to an existing file or directory. External links
(http/https/mailto), pure anchors (#...), and absolute paths are ignored —
this guards the docs/ cross-link web (README.md, docs/MEMORY.md,
docs/ARCHITECTURE.md, ...), not the internet.

Usage: python3 tools/check_md_links.py [repo_root]
Exit code 0 when all links resolve, 1 otherwise (each break is printed).
"""
import pathlib
import re
import sys

SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "node_modules"}
# Inline link or image: [text](target) / ![alt](target). Title suffixes
# ('... "title"') and angle-bracketed targets are handled below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def md_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_file(path: pathlib.Path, root: pathlib.Path):
    broken = []
    text = path.read_text(encoding="utf-8", errors="replace")
    for match in LINK_RE.finditer(text):
        target = match.group(1).strip().strip("<>")
        if not target or target.startswith(("#", "http://", "https://", "mailto:")):
            continue
        if target.startswith("/"):
            continue  # absolute paths are not repo-relative docs links
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            broken.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            broken.append((target, "does not exist"))
    return broken


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    failures = 0
    checked = 0
    for path in md_files(root):
        checked += 1
        for target, reason in check_file(path, root):
            failures += 1
            print(f"{path}: broken link '{target}' ({reason})")
    print(f"checked {checked} markdown files: "
          f"{'all links OK' if failures == 0 else f'{failures} broken link(s)'}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
