// smash_cli — run the SMASH pipeline over a trace on disk.
//
//   smash_cli --trace TRACE.tsv [--whois WHOIS.tsv] [--thresh T]
//             [--idf N] [--single-thresh T] [--report campaigns|servers|full]
//   smash_cli --demo [--seed S]        # synthesize a day, write the TSVs,
//                                      # then analyze them like real input
//
// Trace format: the net::Trace TSV (REQ/RES/RED records, see
// src/net/trace.h). Whois format: the whois::Registry TSV (WHOIS/PROXY
// records, see src/whois/whois.h). Output goes to stdout, one campaign per
// block, and is stable across runs (the pipeline is deterministic).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "synth/world.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace TRACE.tsv [--whois WHOIS.tsv] [--thresh T]\n"
               "          [--single-thresh T] [--idf N] [--report MODE]\n"
               "       %s --demo [--seed S]\n",
               argv0, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smash;

  std::string trace_path;
  std::string whois_path;
  std::string report = "campaigns";
  bool demo = false;
  std::uint64_t seed = 7;
  core::SmashConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--whois") whois_path = next();
    else if (arg == "--thresh") config.score_threshold = std::strtod(next(), nullptr);
    else if (arg == "--single-thresh")
      config.single_client_score_threshold = std::strtod(next(), nullptr);
    else if (arg == "--idf")
      config.idf_threshold = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--report") report = next();
    else if (arg == "--demo") demo = true;
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else usage(argv[0]);
  }

  net::Trace trace;
  whois::Registry registry;
  if (demo) {
    auto world_config = synth::tiny_world(seed);
    const synth::Dataset dataset = synth::generate_world(world_config);
    // Round-trip through the on-disk formats so the demo exercises exactly
    // the real-input path.
    dataset.trace.write_tsv("smash_demo_trace.tsv");
    dataset.whois.write_tsv("smash_demo_whois.tsv");
    trace = net::Trace::read_tsv("smash_demo_trace.tsv");
    registry = whois::Registry::read_tsv("smash_demo_whois.tsv");
    config.idf_threshold = 60;  // tiny world has ~400 clients
    std::fprintf(stderr, "demo: wrote smash_demo_trace.tsv / smash_demo_whois.tsv\n");
  } else {
    if (trace_path.empty()) usage(argv[0]);
    trace = net::Trace::read_tsv(trace_path);
    if (!whois_path.empty()) registry = whois::Registry::read_tsv(whois_path);
  }

  const core::SmashPipeline pipeline(config);
  const core::SmashResult result = pipeline.run(trace, registry);

  std::printf("# trace: %zu requests, %u clients, %u hostnames -> %u servers "
              "after preprocessing\n",
              trace.num_requests(), trace.num_clients(), trace.num_servers(),
              result.pre.servers_after_filter);
  std::printf("# campaigns: %zu (thresh %.2f multi / %.2f single)\n",
              result.campaigns.size(), config.score_threshold,
              config.single_client_score_threshold);

  int index = 0;
  for (const auto& campaign : result.campaigns) {
    ++index;
    if (report == "servers") {
      for (auto member : campaign.servers) {
        std::printf("%d\t%s\n", index, result.server_name(member).c_str());
      }
      continue;
    }
    std::printf("\ncampaign %d: %zu servers, %zu involved clients\n", index,
                campaign.servers.size(), campaign.involved_clients.size());
    if (report == "campaigns" && campaign.servers.size() > 8) {
      for (std::size_t s = 0; s < 8; ++s) {
        std::printf("  %s\n", result.server_name(campaign.servers[s]).c_str());
      }
      std::printf("  ... %zu more\n", campaign.servers.size() - 8);
      continue;
    }
    for (auto member : campaign.servers) {
      const auto& profile = result.server_profile(member);
      std::string files;
      for (auto f : profile.files) {
        if (files.size() > 50) { files += ",..."; break; }
        if (!files.empty()) files += ",";
        files += result.pre.agg.files().name(f);
      }
      std::printf("  %-30s score=%.2f clients=%zu files=[%s]\n",
                  result.server_name(member).c_str(),
                  result.correlation.score[member], profile.clients.size(),
                  files.c_str());
    }
  }
  return 0;
}
