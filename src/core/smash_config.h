// All tunables of the SMASH pipeline in one place. Defaults follow the
// paper where it gives values (IDF threshold 200, filename len 25, cosine
// 0.8, mu = 4, sigma = 5.5, thresh 0.8 multi-client / 1.0 single-client);
// per-dimension graph edge cut-offs are our choices (the paper leaves them
// unspecified) and are documented in README.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/louvain.h"

namespace smash::obs {
class Registry;
}  // namespace smash::obs

namespace smash::core {

struct SmashConfig {
  // --- preprocessing (paper §III-A, Appendix A) -----------------------------
  // Servers contacted by more than this many distinct clients are removed
  // as "popular".
  std::uint32_t idf_threshold = 200;

  // --- dimension graphs (paper §III-B) --------------------------------------
  // Minimum eq. (1) client similarity for a main-dimension edge.
  double client_edge_threshold = 0.2;
  // Minimum URI-file-class similarity (bidirectional form of eq. (7)).
  double file_edge_threshold = 0.04;
  // Minimum eq. (8) IP-set similarity.
  double ip_edge_threshold = 0.25;
  // Whois: minimum shared non-proxy fields (paper: 2).
  int whois_min_shared_fields = 2;

  // URI-file similarity, eqs. (2)-(6): filenames longer than `len` are
  // compared by character-frequency cosine instead of equality.
  std::uint32_t filename_len_threshold = 25;  // Appendix B
  double filename_cosine_threshold = 0.8;

  // Safety caps for the inverted-index joins (unit: items per postings
  // list). A URI file served by more servers than `file_postings_cap`
  // (default 1500) is treated as a stop-file (index.html and friends);
  // eq. (7)'s normalization makes such files uninformative anyway.
  // `join_postings_cap` (default 20000) bounds every other join's pair
  // explosion. Both caps fire on a key's FULL postings length, so their
  // semantics are independent of num_threads and of
  // join_memory_budget_bytes; a fired cap undercounts and is reported via
  // JoinStats / SmashResult::postings_budget_exceeded(). Do NOT lower
  // these to save memory — set join_memory_budget_bytes instead, which
  // bounds memory without undercounting.
  std::uint32_t file_postings_cap = 1500;
  std::uint32_t join_postings_cap = 20000;

  // --- correlation (paper §III-C, eq. (9)) ----------------------------------
  double mu = 4.0;     // promotes groups larger than 4
  double sigma = 5.5;  // steepness of the erf curve
  // `thresh`: servers scoring below are removed. The paper sweeps
  // {0.5, 0.8, 1.0, 1.5} and operates at 0.8 for campaigns with >= 2
  // clients and 1.0 for single-client campaigns (§V-A, footnote 9).
  double score_threshold = 0.8;
  double single_client_score_threshold = 1.0;

  // --- extensions (paper §VI) --------------------------------------------------
  // Adds the parameter-pattern secondary dimension (recovers the paper's
  // §V-A2 false negatives that share only "p=&id=&e="-style structure).
  bool enable_param_dimension = false;
  double param_edge_threshold = 0.15;
  // Patterns shared by more servers than this are structural noise
  // ("id=" alone) and are skipped, like the URI-file stop-file cap.
  std::uint32_t param_postings_cap = 1500;

  // --- execution ---------------------------------------------------------------
  // Worker threads for ASH mining (unit: threads; default 1 = fully
  // serial): dimensions are mined concurrently and the client/file/whois
  // joins are probe-range sharded across the leftover threads. Results
  // are identical for any thread count (each dimension is independent and
  // the sharded join reproduces the serial output exactly).
  unsigned num_threads = 1;

  // Upper bound on the resident postings-index memory of any one
  // similarity join (unit: bytes; default 0 = unbounded, single in-RAM
  // pass). When set, each join is key-range sharded
  // (graph::cooccurrence_join_sharded): the key universe is partitioned
  // into passes sized from the observed key cardinalities, passes run
  // sequentially (re-probing the items once per pass), and the per-pass
  // outputs merge into a result byte-identical to the unbounded join —
  // week-scale batch windows complete exactly instead of relying on
  // lowered postings caps that undercount. Interactions: with
  // num_threads > 1 the concurrent dimension fan-out divides this budget
  // evenly across the dimensions mined in parallel, so the SUM of
  // simultaneously resident postings indexes stays within budget; within
  // a pass, probe sharding adds 4 bytes × kept-servers of counter scratch
  // per thread, which is NOT counted against the budget (it is
  // output-side, not postings-side). The only case a pass exceeds the
  // budget is a single key whose postings alone do — reported in
  // JoinStats::peak_resident_postings_bytes, never silent. The trade is
  // memory for passes: S passes re-scan the probe sets S times (see
  // docs/MEMORY.md for the worked week-scale numbers).
  std::size_t join_memory_budget_bytes = 0;

  // How the concurrent dimension fan-out splits join_memory_budget_bytes
  // across the dimensions mined in parallel. true (default): each
  // dimension keeps a floor of a quarter of its even share and the rest
  // of the budget is split in proportion to estimated postings entries
  // (the client join — by far the largest index — gets most of the
  // budget, so a skewed workload runs far fewer total shard passes).
  // false: the even split of earlier releases. Either way the sum of
  // simultaneously resident postings indexes stays within the budget, and
  // the split only changes pass counts — mined output is byte-identical.
  // Irrelevant when join_memory_budget_bytes == 0 or num_threads <= 1
  // (dimensions mined one at a time each get the full budget).
  bool weighted_budget_split = true;

  // --- incremental re-mining (streaming delta path) ---------------------------
  // Knobs consumed by core::DeltaMiner when the stream engine runs with
  // StreamConfig::incremental_mining. Both are inert on the batch path.
  //
  // Fall back to a full per-dimension mine when more than this fraction of
  // the dimension's nodes changed since the last close — below the cutoff
  // the delta join probes only the changed nodes; above it, probing
  // approaches full-join cost while paying extra bookkeeping.
  double delta_max_changed_fraction = 0.5;
  // Opt-in speed mode: repair the previous Louvain partition with
  // graph::louvain_warm_start instead of re-running louvain_refined when a
  // dimension's graph changed. APPROXIMATE — partitions may differ from
  // the from-scratch run, so this is excluded from the incremental-vs-full
  // byte-identity matrix (kept off by every differential test and CI
  // gate). Default off: the identity-preserving path re-partitions changed
  // graphs and reuses cached partitions only when the graph is bitwise
  // unchanged.
  bool delta_approximate_louvain = false;

  // --- pruning (paper §III-D) -------------------------------------------------
  // A server is "referred by" a host if at least this fraction of its
  // requests carry that Referer; a group is a referrer group if every
  // member shares the same dominant referrer.
  double referrer_dominance = 0.8;

  // Optional metrics sink (not owned; may be null = no metrics). When
  // set, each pipeline run records per-stage and per-dimension duration
  // histograms into it (catalog in docs/OBSERVABILITY.md). The streaming
  // engine points this at its own registry so batch re-mines and stream
  // metrics land on one surface; batch callers can pass
  // &obs::Registry::global() or any registry that outlives the pipeline.
  // Mined output never depends on this pointer.
  obs::Registry* metrics = nullptr;

  // Community-detection tunables, including the chunked-parallel local
  // moving knobs: louvain.num_threads == 0 (default) inherits this
  // config's per-dimension thread budget (num_threads overall; the
  // leftover-thread share for the client dimension inside the concurrent
  // fan-out), and louvain.chunk_size sizes the deterministic chunked
  // sweeps. Partitions are byte-identical for every thread count and
  // chunk size, so these trade wall-clock only.
  graph::LouvainOptions louvain;

  // Convenience: same threshold for both campaign classes (used by the
  // table benches when sweeping `thresh`).
  SmashConfig with_threshold(double thresh) const {
    SmashConfig out = *this;
    out.score_threshold = thresh;
    out.single_client_score_threshold = thresh;
    return out;
  }
};

}  // namespace smash::core
