#include "core/file_classifier.h"

#include <gtest/gtest.h>

#include "util/interner.h"

namespace smash::core {
namespace {

TEST(CharFrequencyCosine, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(char_frequency_cosine("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(char_frequency_cosine("abc", "cba"), 1.0);  // anagram
  EXPECT_DOUBLE_EQ(char_frequency_cosine("aaa", "bbb"), 0.0);
  EXPECT_DOUBLE_EQ(char_frequency_cosine("", "abc"), 0.0);
}

TEST(CharFrequencyCosine, PartialOverlap) {
  const double sim = char_frequency_cosine("aab", "abb");
  EXPECT_GT(sim, 0.5);
  EXPECT_LT(sim, 1.0);
}

TEST(FilesSimilar, ShortNamesRequireEquality) {
  // eqs. (2)-(3): short names are similar only when identical.
  EXPECT_TRUE(files_similar("login.php", "login.php", 25, 0.8));
  EXPECT_FALSE(files_similar("login.php", "nigol.php", 25, 0.8));  // anagram!
  EXPECT_FALSE(files_similar("a.php", "b.php", 25, 0.8));
}

TEST(FilesSimilar, LongNamesUseCosine) {
  const std::string a = "abcabcabcabcabcabcabcabcabc123.php";   // > 25 chars
  const std::string b = "cbacbacbacbacbacbacbacbacba321.php";   // same charset
  const std::string c = "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz.php";
  ASSERT_GT(a.size(), 25u);
  EXPECT_TRUE(files_similar(a, b, 25, 0.8));
  EXPECT_FALSE(files_similar(a, c, 25, 0.8));
}

TEST(FilesSimilar, MixedLengthFallsBackToEquality) {
  const std::string long_name(30, 'x');
  EXPECT_FALSE(files_similar(long_name, "x.php", 25, 0.8));
}

TEST(FileClassifier, ShortFilesGetOwnClasses) {
  util::Interner files;
  const auto a = files.intern("a.php");
  const auto b = files.intern("b.php");
  const auto a2 = files.intern("a.php");
  const FileClassifier classifier(files, 25, 0.8);
  EXPECT_EQ(a, a2);
  EXPECT_NE(classifier.class_of(a), classifier.class_of(b));
  EXPECT_EQ(classifier.num_long_files(), 0u);
}

TEST(FileClassifier, LongSimilarFilesShareClass) {
  util::Interner files;
  const auto a = files.intern("qwqwqwqwqwqwqwqwqwqwqwqwqwqw11.php");
  const auto b = files.intern("wqwqwqwqwqwqwqwqwqwqwqwqwqwq11.php");
  const auto c = files.intern("zxzxzxzxzxzxzxzxzxzxzxzxzxzx99.bin");
  const auto d = files.intern("short.php");
  const FileClassifier classifier(files, 25, 0.8);
  EXPECT_EQ(classifier.class_of(a), classifier.class_of(b));
  EXPECT_NE(classifier.class_of(a), classifier.class_of(c));
  EXPECT_NE(classifier.class_of(a), classifier.class_of(d));
  EXPECT_EQ(classifier.num_long_files(), 3u);
  EXPECT_EQ(classifier.num_classes(), 3u);  // {a,b}, {c}, {d}
}

TEST(FileClassifier, ClassIdsAreDense) {
  util::Interner files;
  for (int i = 0; i < 10; ++i) files.intern("file" + std::to_string(i) + ".php");
  const FileClassifier classifier(files, 25, 0.8);
  EXPECT_EQ(classifier.num_classes(), 10u);
  for (std::uint32_t f = 0; f < 10; ++f) {
    EXPECT_LT(classifier.class_of(f), classifier.num_classes());
  }
}

TEST(FileClassifier, EmptyInterner) {
  util::Interner files;
  const FileClassifier classifier(files, 25, 0.8);
  EXPECT_EQ(classifier.num_classes(), 0u);
}

TEST(FileClassifier, SingleLinkageIsTransitiveByConstruction) {
  // a~b and b~c put a,c in one class even if a,c are just at the margin —
  // the union-find family semantics the obfuscated-herd mining relies on.
  util::Interner files;
  const auto a = files.intern("aaaaaaaaaaaaaaaaaaaaaaaaaabb.php");
  const auto b = files.intern("aaaaaaaaaaaaaaaaaaaaaaaaabbb.php");
  const auto c = files.intern("aaaaaaaaaaaaaaaaaaaaaaaabbbb.php");
  const FileClassifier classifier(files, 25, 0.8);
  EXPECT_EQ(classifier.class_of(a), classifier.class_of(b));
  EXPECT_EQ(classifier.class_of(b), classifier.class_of(c));
}

}  // namespace
}  // namespace smash::core
