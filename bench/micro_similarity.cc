// Microbenchmark: the sparse co-occurrence join that implements the
// paper's §VI overhead remark (index-based similarity instead of dense
// N^2 pairs). Sweeps item count and key-set density.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/similarity_join.h"
#include "util/rng.h"

namespace {

using smash::graph::cooccurrence_join;
using smash::util::Rng;

void BM_CooccurrenceJoin(benchmark::State& state) {
  const auto items = static_cast<std::uint32_t>(state.range(0));
  const auto keys_per_item = static_cast<std::uint32_t>(state.range(1));
  // Key space scales with items (sparse, ISP-like overlap structure).
  const auto data =
      smash::bench::random_key_sets(items, keys_per_item, items * 2, 7);
  std::size_t pairs = 0;
  for (auto _ : state) {
    const auto result = cooccurrence_join(data);
    pairs = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * items);
}

BENCHMARK(BM_CooccurrenceJoin)
    ->Args({1000, 4})
    ->Args({1000, 16})
    ->Args({10000, 4})
    ->Args({10000, 16})
    ->Args({50000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BidirectionalSimilarity(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const auto shared = static_cast<std::uint32_t>(rng.uniform(10));
    benchmark::DoNotOptimize(smash::graph::bidirectional_similarity(
        shared, shared + rng.uniform(20) + 1, shared + rng.uniform(20) + 1));
  }
}
BENCHMARK(BM_BidirectionalSimilarity);

}  // namespace

BENCHMARK_MAIN();
