#include "graph/similarity_join.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.h"

namespace smash::graph {

namespace {

// Flat CSR inverted index: postings of key k are
// entries[offsets[k] .. offsets[k+1]), in ascending item order (guaranteed
// by the counting-sort build iterating items in order).
struct PostingsIndex {
  std::vector<std::size_t> offsets;     // size num_keys + 1
  std::vector<std::uint32_t> entries;   // item ids
  std::uint32_t num_keys = 0;           // max key + 1 (0 when no keys)

  std::size_t length(std::uint32_t key) const {
    return offsets[key + 1] - offsets[key];
  }
};

PostingsIndex build_postings(std::span<const util::IdSet> items) {
  PostingsIndex index;
  std::uint32_t max_key = 0;
  bool any_key = false;
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_normalized()) {
      throw std::invalid_argument("cooccurrence_join: IdSet not normalized");
    }
    if (!items[i].empty()) {
      any_key = true;
      max_key = std::max(max_key, items[i].values().back());
      total_entries += items[i].size();
    }
  }
  index.num_keys = any_key ? max_key + 1 : 0;

  index.offsets.assign(index.num_keys + 1, 0);
  for (const auto& item : items) {
    for (auto key : item) ++index.offsets[key + 1];
  }
  for (std::uint32_t k = 0; k < index.num_keys; ++k) {
    index.offsets[k + 1] += index.offsets[k];
  }

  index.entries.resize(total_entries);
  std::vector<std::size_t> cursor(index.offsets.begin(),
                                  index.offsets.end() - 1);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    for (auto key : items[i]) index.entries[cursor[key]++] = i;
  }
  return index;
}

// Counts co-occurrences for probe items in [a_begin, a_end) against the
// shared postings index, appending (a, b, count) triples grouped by `a` in
// ascending (a, b) order. `counts` must be all-zero on entry and of size
// >= items.size(); it is restored to all-zero on exit.
void count_probe_range(std::span<const util::IdSet> items,
                       const PostingsIndex& index, std::uint32_t a_begin,
                       std::uint32_t a_end, std::uint32_t min_shared,
                       std::uint32_t max_postings_length,
                       std::vector<std::uint32_t>& counts,
                       std::vector<std::uint32_t>& touched,
                       std::vector<CooccurrencePair>& out,
                       std::size_t& candidate_pairs) {
  for (std::uint32_t a = a_begin; a < a_end; ++a) {
    touched.clear();
    for (auto key : items[a]) {
      const std::size_t len = index.length(key);
      if (len < 2 || len > max_postings_length) continue;
      const auto* begin = index.entries.data() + index.offsets[key];
      const auto* end = index.entries.data() + index.offsets[key + 1];
      // Postings are ascending, so everything after `a` pairs with it.
      const auto* it = std::upper_bound(begin, end, a);
      candidate_pairs += static_cast<std::size_t>(end - it);
      for (; it != end; ++it) {
        const std::uint32_t b = *it;
        // Edge weights into the scoring array; 0 means "untouched" (a key
        // contributes exactly 1, so a touched slot is always >= 1).
        if (counts[b]++ == 0) touched.push_back(b);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t b : touched) {
      if (counts[b] >= min_shared) out.push_back({a, b, counts[b]});
      counts[b] = 0;
    }
  }
}

void fill_key_stats(const PostingsIndex& index,
                    std::uint32_t max_postings_length, JoinStats& stats) {
  stats.postings_entries = index.entries.size();
  for (std::uint32_t k = 0; k < index.num_keys; ++k) {
    const std::size_t len = index.length(k);
    if (len == 0) continue;
    ++stats.num_keys;
    stats.peak_postings_length = std::max(stats.peak_postings_length, len);
    if (len > max_postings_length) {
      ++stats.skipped_keys;
      stats.skipped_entries += len;
    }
  }
}

}  // namespace

std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, JoinStats* stats) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }
  const PostingsIndex index = build_postings(items);

  JoinStats local;
  fill_key_stats(index, options.max_postings_length, local);

  std::vector<CooccurrencePair> out;
  std::vector<std::uint32_t> counts(items.size(), 0);
  std::vector<std::uint32_t> touched;
  count_probe_range(items, index, 0, static_cast<std::uint32_t>(items.size()),
                    min_shared, options.max_postings_length, counts, touched,
                    out, local.candidate_pairs);
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<CooccurrencePair> cooccurrence_join_parallel(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads, JoinStats* stats) {
  constexpr std::size_t kMinItemsPerShard = 256;
  const std::size_t n = items.size();
  unsigned shards = num_threads == 0 ? 1 : num_threads;
  shards = static_cast<unsigned>(
      std::min<std::size_t>(shards, std::max<std::size_t>(n / kMinItemsPerShard, 1)));
  if (shards <= 1) return cooccurrence_join(items, min_shared, options, stats);
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }

  const PostingsIndex index = build_postings(items);

  JoinStats local;
  fill_key_stats(index, options.max_postings_length, local);

  std::vector<std::vector<CooccurrencePair>> shard_out(shards);
  std::vector<std::size_t> shard_candidates(shards, 0);
  util::ThreadPool pool(std::min(num_threads, shards));
  util::parallel_for(pool, shards, [&](std::size_t s) {
    const auto lo = static_cast<std::uint32_t>(n * s / shards);
    const auto hi = static_cast<std::uint32_t>(n * (s + 1) / shards);
    std::vector<std::uint32_t> counts(n, 0);
    std::vector<std::uint32_t> touched;
    count_probe_range(items, index, lo, hi, min_shared,
                      options.max_postings_length, counts, touched,
                      shard_out[s], shard_candidates[s]);
  });

  std::vector<CooccurrencePair> out;
  std::size_t total = 0;
  for (const auto& part : shard_out) total += part.size();
  out.reserve(total);
  // Shards are contiguous ascending probe ranges, so plain concatenation
  // reproduces the serial (a, b) order exactly.
  for (auto& part : shard_out) {
    out.insert(out.end(), part.begin(), part.end());
  }
  for (const auto c : shard_candidates) local.candidate_pairs += c;
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<CooccurrencePair> cooccurrence_join_reference(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }

  // Inverted index: key -> items containing it, in ascending item order
  // (guaranteed by iterating items in order).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> postings;
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_normalized()) {
      throw std::invalid_argument("cooccurrence_join: IdSet not normalized");
    }
    for (auto key : items[i]) postings[key].push_back(i);
  }

  // Count co-occurrences per pair. Key: packed (a<<32)|b with a < b.
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const auto& [key, list] : postings) {
    (void)key;
    if (list.size() < 2 || list.size() > options.max_postings_length) continue;
    for (std::size_t x = 0; x < list.size(); ++x) {
      for (std::size_t y = x + 1; y < list.size(); ++y) {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(list[x]) << 32) | list[y];
        ++counts[packed];
      }
    }
  }

  std::vector<CooccurrencePair> out;
  out.reserve(counts.size());
  for (const auto& [packed, count] : counts) {
    if (count < min_shared) continue;
    out.push_back({static_cast<std::uint32_t>(packed >> 32),
                   static_cast<std::uint32_t>(packed & 0xffffffffu), count});
  }
  std::sort(out.begin(), out.end(), [](const auto& p, const auto& q) {
    return p.a != q.a ? p.a < q.a : p.b < q.b;
  });
  return out;
}

double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  const double s = static_cast<double>(shared);
  return (s / static_cast<double>(size_a)) * (s / static_cast<double>(size_b));
}

}  // namespace smash::graph
