#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace smash::util {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Variance, KnownValue) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
  EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(EmpiricalCdf, StepFunction) {
  const auto cdf = empirical_cdf({1, 1, 2, 4});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 3.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3);    // clamped to 0
  h.add(200);   // clamped to 4
  h.add(5.0);   // bucket 2
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[4], 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(HistogramTest, CountsUnderflowAndOverflowExplicitly) {
  Histogram h(0, 10, 5);
  EXPECT_EQ(h.underflow, 0u);
  EXPECT_EQ(h.overflow, 0u);
  h.add(-3);    // below lo: clamped AND counted
  h.add(-0.01);
  h.add(0.0);   // exactly lo: in range
  h.add(10.0);  // exactly hi: overflow (range is [lo, hi))
  h.add(200);
  h.add(5.0);
  EXPECT_EQ(h.underflow, 2u);
  EXPECT_EQ(h.overflow, 2u);
  // total() still includes the clamped samples — nothing is dropped.
  EXPECT_EQ(h.total(), 6u);
  // The ascii rendering surfaces the clamp counts so a latency histogram
  // can never silently hide tail outliers inside an edge bucket.
  EXPECT_NE(h.ascii().find("clamped: 2 below"), std::string::npos);

  Histogram clean(0, 10, 5);
  clean.add(5.0);
  EXPECT_EQ(clean.ascii().find("clamped"), std::string::npos);
}

TEST(HistogramTest, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5, 5, 3), std::invalid_argument);
}

// phi(x) = (1 + erf((x - mu)/sigma)) / 2, the eq. (9) normalizer.
TEST(PhiErf, CenterIsHalf) {
  EXPECT_NEAR(phi_erf(4.0, 4.0, 5.5), 0.5, 1e-12);
}

TEST(PhiErf, MonotoneInX) {
  // Strictly increasing until double-precision erf saturates (~x = 25 for
  // these parameters), non-decreasing after.
  double prev = 0.0;
  for (int x = 0; x <= 40; ++x) {
    const double v = phi_erf(x, 4.0, 5.5);
    if (x <= 20) EXPECT_GT(v, prev) << "x=" << x;
    else EXPECT_GE(v, prev) << "x=" << x;
    prev = v;
  }
}

TEST(PhiErf, SaturatesNearOne) {
  EXPECT_GT(phi_erf(40, 4.0, 5.5), 0.999);
  EXPECT_LE(phi_erf(40, 4.0, 5.5), 1.0);  // saturates to 1 in double precision
}

TEST(PhiErf, PaperAnchors) {
  // "a group with less than four servers receives a low score"
  EXPECT_LT(phi_erf(2, 4.0, 5.5), 0.31);
  EXPECT_LT(phi_erf(3, 4.0, 5.5), 0.5);
  // Larger groups approach full confidence.
  EXPECT_GT(phi_erf(10, 4.0, 5.5), 0.9);
}

TEST(PhiErf, RejectsBadSigma) {
  EXPECT_THROW(phi_erf(1, 0, 0), std::invalid_argument);
  EXPECT_THROW(phi_erf(1, 0, -2), std::invalid_argument);
}

}  // namespace
}  // namespace smash::util
