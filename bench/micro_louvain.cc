// Microbenchmark: Louvain vs refined Louvain on planted-clique graphs of
// the shape the SMASH dimensions produce (many small cliques with sparse
// bridges). Refinement costs one extra pass per community but recovers the
// planted structure the scoring step depends on.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/louvain.h"

namespace {

using namespace smash::graph;

void BM_Louvain(benchmark::State& state) {
  const auto cliques = static_cast<std::uint32_t>(state.range(0));
  const Graph g = smash::bench::planted_clique_graph(cliques, 8, 0.5, 11);
  double modularity = 0;
  for (auto _ : state) {
    const auto result = louvain(g);
    modularity = result.modularity;
    benchmark::DoNotOptimize(result);
  }
  state.counters["Q"] = modularity;
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_Louvain)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LouvainRefined(benchmark::State& state) {
  const auto cliques = static_cast<std::uint32_t>(state.range(0));
  const Graph g = smash::bench::planted_clique_graph(cliques, 8, 0.5, 11);
  std::uint32_t communities = 0;
  for (auto _ : state) {
    const auto result = louvain_refined(g);
    communities = result.num_communities;
    benchmark::DoNotOptimize(result);
  }
  state.counters["communities"] = communities;
  state.counters["planted"] = cliques;
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_LouvainRefined)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
