#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

namespace smash::graph {

Graph GraphBuilder::build() && {
  // Canonicalize: u <= v, then sort and merge duplicates.
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.num_edges_ = merged.size();
  g.weighted_degree_.assign(num_nodes_, 0.0);
  g.self_loop_.assign(num_nodes_, 0.0);

  std::vector<std::size_t> counts(num_nodes_ + 1, 0);
  for (const auto& e : merged) {
    ++counts[e.u + 1];
    if (e.u != e.v) ++counts[e.v + 1];
  }
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (std::uint32_t i = 0; i < num_nodes_; ++i) {
    g.offsets_[i + 1] = g.offsets_[i] + counts[i + 1];
  }
  g.adj_.resize(g.offsets_[num_nodes_]);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : merged) {
    g.adj_[cursor[e.u]++] = {e.v, e.weight};
    if (e.u != e.v) g.adj_[cursor[e.v]++] = {e.u, e.weight};

    g.total_weight_ += e.weight;
    if (e.u == e.v) {
      g.self_loop_[e.u] += e.weight;
      g.weighted_degree_[e.u] += 2.0 * e.weight;
    } else {
      g.weighted_degree_[e.u] += e.weight;
      g.weighted_degree_[e.v] += e.weight;
    }
  }
  return g;
}

bool Graph::has_edge(std::uint32_t u, std::uint32_t v) const {
  for (const auto& n : neighbors(u)) {
    if (n.node == v) return true;
  }
  return false;
}

double subset_density(const Graph& g, std::span<const std::uint32_t> nodes) {
  if (nodes.size() < 2) return 0.0;
  std::unordered_set<std::uint32_t> in_set(nodes.begin(), nodes.end());
  std::size_t internal_edges = 0;
  for (auto u : nodes) {
    for (const auto& n : g.neighbors(u)) {
      if (n.node > u && in_set.count(n.node)) ++internal_edges;
    }
  }
  const double pairs =
      static_cast<double>(in_set.size()) * (static_cast<double>(in_set.size()) - 1.0) / 2.0;
  return static_cast<double>(internal_edges) / pairs;
}

}  // namespace smash::graph
