#include "graph/similarity_join.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace smash::graph {

std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }

  // Inverted index: key -> items containing it, in ascending item order
  // (guaranteed by iterating items in order).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> postings;
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_normalized()) {
      throw std::invalid_argument("cooccurrence_join: IdSet not normalized");
    }
    for (auto key : items[i]) postings[key].push_back(i);
  }

  // Count co-occurrences per pair. Key: packed (a<<32)|b with a < b.
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const auto& [key, list] : postings) {
    (void)key;
    if (list.size() < 2 || list.size() > options.max_postings_length) continue;
    for (std::size_t x = 0; x < list.size(); ++x) {
      for (std::size_t y = x + 1; y < list.size(); ++y) {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(list[x]) << 32) | list[y];
        ++counts[packed];
      }
    }
  }

  std::vector<CooccurrencePair> out;
  out.reserve(counts.size());
  for (const auto& [packed, count] : counts) {
    if (count < min_shared) continue;
    out.push_back({static_cast<std::uint32_t>(packed >> 32),
                   static_cast<std::uint32_t>(packed & 0xffffffffu), count});
  }
  std::sort(out.begin(), out.end(), [](const auto& p, const auto& q) {
    return p.a != q.a ? p.a < q.a : p.b < q.b;
  });
  return out;
}

double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  const double s = static_cast<double>(shared);
  return (s / static_cast<double>(size_a)) * (s / static_cast<double>(size_b));
}

}  // namespace smash::graph
