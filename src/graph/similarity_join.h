// Sparse similarity join via inverted indexing.
//
// The paper notes (§VI, Overhead) that naive pairwise similarity is O(N^2)
// and points to sparse matrix multiplication as the fix. The equivalent
// index-based formulation: for item i with key set K_i, the co-occurrence
// count |K_i ∩ K_j| for every j sharing at least one key is obtained by
// walking key -> item postings lists. Pairs sharing no key (similarity 0
// under eqs. 1/8) are never materialized.
//
// Implementation notes: the index is a flat CSR postings buffer (offsets +
// one contiguous entry array, no per-key vectors) and pair counting uses a
// probe-side dense scoring array with a touched list instead of a hash map
// keyed by packed pairs. Output is produced already grouped by `a` in
// ascending (a, b) order, so no final sort is needed and results are
// byte-identical across runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/id_set.h"

namespace smash::graph {

struct CooccurrencePair {
  std::uint32_t a = 0;  // a < b
  std::uint32_t b = 0;
  std::uint32_t shared_keys = 0;  // |K_a ∩ K_b|

  friend bool operator==(const CooccurrencePair&, const CooccurrencePair&) = default;
};

struct JoinOptions {
  // Postings lists longer than this (unit: items per key; default 20000)
  // are skipped when enumerating pairs: a key shared by k items contributes
  // k(k-1)/2 pairs, so one pathological key (e.g. a crawler client
  // contacting everything) can blow up the join.
  //
  // NOTE: skipping a key UNDERCOUNTS shared_keys for the affected pairs;
  // SMASH's preprocessing (IDF filter) is responsible for removing such
  // hubs beforehand, and the default cap is high enough to be inert on
  // realistic inputs. It exists as a safety valve only — it is a *pair
  // explosion* guard, not a memory guard; for memory, use the key-range
  // sharded join below. JoinStats reports how often it fired so the
  // undercount is observable instead of silent. A key's length is always
  // its full postings length, so the cap fires identically in the in-RAM,
  // probe-parallel, and key-range-sharded joins (independent of
  // num_threads and of any memory budget).
  std::uint32_t max_postings_length = 20000;
};

// Observability counters for one join invocation. All counters except
// `shard_passes` and `peak_resident_postings_bytes` are invariant across
// the serial, probe-parallel, and key-range-sharded execution strategies
// (every key is indexed and probed exactly once in each of them).
struct JoinStats {
  std::size_t num_keys = 0;              // distinct keys indexed
  std::size_t postings_entries = 0;      // total (key, item) entries
  std::size_t peak_postings_length = 0;  // longest postings list, incl. skipped
  std::size_t skipped_keys = 0;          // keys over max_postings_length
  std::size_t skipped_entries = 0;       // postings entries under skipped keys
  std::size_t candidate_pairs = 0;       // counter increments performed
  std::size_t emitted_pairs = 0;         // pairs meeting min_shared
  // Key-range passes this join ran: 1 = a single in-RAM postings index
  // (cooccurrence_join / _parallel, or a budget large enough for one
  // pass); > 1 = the bounded-memory sharded join rebuilt the index that
  // many times. 0 only in a default-constructed JoinStats (no join ran).
  std::size_t shard_passes = 0;
  // Largest postings-index footprint (bytes: offsets + build cursor +
  // entries) resident at any moment. For the sharded join this is the
  // biggest single pass and is <= the memory budget unless one key alone
  // exceeds it (degenerate case — the key still gets a pass of its own,
  // and the overshoot is visible here).
  std::size_t peak_resident_postings_bytes = 0;

  friend bool operator==(const JoinStats&, const JoinStats&) = default;
};

// items[i] is the (normalized) key set of item i. Returns every pair with
// shared_keys >= min_shared, each pair exactly once with a < b, sorted by
// (a, b). Deterministic: identical inputs yield identical outputs. When
// `stats` is non-null it is overwritten with this invocation's counters.
std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared = 1,
    const JoinOptions& options = {}, JoinStats* stats = nullptr);

// Probe-range-sharded parallel join: identical output to the serial form
// (shards are contiguous ranges of `a`, concatenated in order), using up to
// `num_threads` worker threads. Falls back to the serial join when
// num_threads <= 1 or the input is small. The full postings index is
// resident (JoinStats::shard_passes == 1) plus one dense counter array of
// 4 * items.size() bytes per worker; for a bounded postings footprint use
// cooccurrence_join_sharded.
std::vector<CooccurrencePair> cooccurrence_join_parallel(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads,
    JoinStats* stats = nullptr);

// One contiguous key range of a bounded-memory join plan: keys in
// [begin, end) build one postings index of `bytes` resident bytes.
struct KeyShardRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;       // exclusive
  std::size_t bytes = 0;       // postings-index footprint of this range
  std::size_t entries = 0;     // (key, item) entries in this range

  friend bool operator==(const KeyShardRange&, const KeyShardRange&) = default;
};

// Plan for a bounded-memory join: contiguous key ranges covering
// [0, max_key], each sized to fit `memory_budget_bytes` of postings-index
// memory. Greedy first-fit over observed per-key cardinalities; a single
// key whose postings alone exceed the budget gets a range of its own (the
// join still completes exactly — the overshoot is reported, never hidden).
struct KeyShardPlan {
  std::vector<KeyShardRange> ranges;  // ascending, disjoint, covering
  std::size_t peak_bytes = 0;         // max range bytes (resident high-water)
  std::size_t total_bytes = 0;        // single in-RAM pass footprint
};

// Postings-index footprint of `num_keys` keys holding `num_entries`
// (key, item) entries: offsets + build cursor (one size_t each per key)
// plus the entry array. This is the formula both the planner and
// JoinStats::peak_resident_postings_bytes use.
constexpr std::size_t postings_bytes(std::size_t num_keys,
                                     std::size_t num_entries) noexcept {
  return (num_keys + 1) * sizeof(std::size_t) +
         num_keys * sizeof(std::size_t) +
         num_entries * sizeof(std::uint32_t);
}

// Computes the key-range plan for `items` under `memory_budget_bytes`
// (unit: bytes; 0 = unbounded, single range). Deterministic; exposed so
// callers and tests can inspect shard counts before running the join.
KeyShardPlan plan_key_shards(std::span<const util::IdSet> items,
                             std::size_t memory_budget_bytes);

// Bounded-memory key-range-sharded join: runs the CSR build + dense-counter
// probe once per planned key range (passes run sequentially, so at most one
// range's postings index is resident), then merges the per-pass grouped
// outputs in (a, b) order, summing partial shared-key counts. Output is
// byte-identical to cooccurrence_join for every budget and thread count;
// min_shared is applied after the merge, so pairs whose shared keys span
// ranges are never lost. Within each pass the probe is range-sharded
// across up to `num_threads` workers (the same probe sharding
// cooccurrence_join_parallel uses). memory_budget_bytes == 0, or a budget
// the whole index fits in, degrades to the single-pass join. Peak resident
// postings memory is reported in JoinStats::peak_resident_postings_bytes;
// it exceeds the budget only when one key alone does (degenerate case).
std::vector<CooccurrencePair> cooccurrence_join_sharded(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, std::size_t memory_budget_bytes,
    unsigned num_threads, JoinStats* stats = nullptr);

// Delta probe join: recomputes exact co-occurrence counts for every pair
// with at least one endpoint in `probe_items` (ascending, unique item ids)
// against a postings index built over the full current window. Cap
// (max_postings_length, always the key's full postings length) and
// min_shared semantics are identical to cooccurrence_join, so for any pair
// touching a probe item the emitted count is byte-identical to the full
// join's; pairs between two non-probe items are never enumerated — the
// incremental miner carries those over from its cache. Each pair appears
// exactly once with a < b, sorted by (a, b). JoinStats describes the full
// index (num_keys / postings_entries / skipped_keys / shard_passes /
// peak_resident_postings_bytes all match the single-pass full join);
// candidate_pairs / emitted_pairs count only the probed work.
std::vector<CooccurrencePair> cooccurrence_join_delta(
    std::span<const util::IdSet> items,
    std::span<const std::uint32_t> probe_items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads,
    JoinStats* stats = nullptr);

// The original hash-map-based join (packed-pair unordered_map), retained as
// a reference implementation for equivalence tests and the speedup
// benchmark in bench/perf_micro.cc. Same contract and output order as
// cooccurrence_join.
std::vector<CooccurrencePair> cooccurrence_join_reference(
    std::span<const util::IdSet> items, std::uint32_t min_shared = 1,
    const JoinOptions& options = {});

// The bidirectional-importance similarity form shared by the paper's main
// (eq. 1) and IP (eq. 8) dimensions:
//   sim = (shared/|K_a|) * (shared/|K_b|)
double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b);

}  // namespace smash::graph
