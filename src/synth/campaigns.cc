// Noise herds and malicious campaign templates. Each template reproduces
// the structural signals of one of the paper's case studies (Tables VII-X,
// Fig. 1) or of its false-positive/false-negative discussion (§V-A).
#include <optional>

#include "dns/dga.h"
#include "dns/domain.h"
#include "synth/world_builder.h"
#include "util/strings.h"

namespace smash::synth::internal {

namespace {

// Short malicious filenames used by generic campaigns. Deliberately avoids
// the flagship filenames (login.php, news.php, sm3.php, setup.php, ...) so
// case-study benches can identify their campaign by filename.
constexpr std::string_view kMalwareFiles[] = {
    "task.php",  "count.php", "image.php", "post.php", "stat.php",
    "check.php", "ld.php",    "cfg.bin",   "upd.php",  "in.cgi",
    "ajax.php",  "b64.php",   "panel.php", "bot.php",  "knock.php"};

constexpr std::string_view kParamKeys[] = {"id", "p",  "q", "v",   "tok",
                                           "cmd", "a",  "b", "x",   "key",
                                           "uid", "ver", "os", "hwid", "cnt"};

std::string random_params(util::Rng& rng, const std::vector<std::string>& keys) {
  std::string out;
  for (const auto& k : keys) {
    if (!out.empty()) out.push_back('&');
    out += k + "=" + std::to_string(rng.next() % 100000000);
  }
  return out;
}

std::vector<std::string> random_param_keys(util::Rng& rng) {
  const auto idx = rng.sample_without_replacement(
      static_cast<std::uint32_t>(std::size(kParamKeys)),
      1 + static_cast<std::uint32_t>(rng.uniform(3)));
  std::vector<std::string> keys;
  for (auto i : idx) keys.emplace_back(kParamKeys[i]);
  return keys;
}

}  // namespace

// --- noise herds (the paper's two FP categories) -------------------------------

void WorldBuilder::generate_noise_herds() {
  auto rng = root_.fork("noise");

  // Torrent trackers: a handful of P2P clients requesting scrape.php from a
  // large tracker population; subsets of trackers share hosting IPs.
  {
    const auto clients = take_clients(cfg_.noise.torrent_clients);
    ids::CampaignTruth truth;
    truth.name = "noise-torrent";
    truth.kind = ids::CampaignKind::kNoiseTorrent;
    for (auto c : clients) truth.clients.push_back(client_names_[c]);
    std::string shared_ip;
    for (std::uint32_t t = 0; t < cfg_.noise.torrent_trackers; ++t) {
      const std::string tracker = fresh_domain(rng, "net");
      register_whois(tracker, rng);
      if (t % 3 == 0) shared_ip = dns::random_ipv4(rng);
      resolve(tracker, shared_ip);  // triples of trackers share an IP
      truth.servers.push_back(dns::effective_2ld(tracker));
      for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
        for (auto c : clients) {
          const auto polls = 1 + rng.uniform(2);
          for (std::uint64_t i = 0; i < polls; ++i) {
            emit(c, tracker, day,
                 "/scrape.php?info_hash=" + std::to_string(rng.next() % 1000000000),
                 "uTorrent/3.2", "");
          }
        }
      }
    }
    ds_.truth.add_campaign(std::move(truth));
  }

  // TeamViewer-style pool: tool users fetch their session id from a pool of
  // interchangeable servers, all serving one path.
  {
    const auto clients = take_clients(cfg_.noise.teamviewer_clients);
    ids::CampaignTruth truth;
    truth.name = "noise-teamviewer";
    truth.kind = ids::CampaignKind::kNoiseTeamViewer;
    for (auto c : clients) truth.clients.push_back(client_names_[c]);
    for (std::uint32_t s = 0; s < cfg_.noise.teamviewer_servers; ++s) {
      const std::string server = "tvpool" + std::to_string(s) + "relay.com";
      register_whois(server, rng);
      resolve_unique(server, rng);
      truth.servers.push_back(dns::effective_2ld(server));
      for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
        for (auto c : clients) {
          emit(c, server, day,
               "/din.aspx?mode=1&client=" + std::to_string(rng.next() % 100000),
               "TeamViewer/7", "");
        }
      }
    }
    ds_.truth.add_campaign(std::move(truth));
  }
}

// --- coverage application -------------------------------------------------------

void WorldBuilder::apply_coverage(Coverage coverage,
                                  const std::string& campaign_name,
                                  const std::vector<std::string>& servers,
                                  const CoverageHooks& hooks, util::Rng& rng) {
  (void)hooks;
  const auto pick_subset = [&](double lo, double hi) {
    const double frac = lo + rng.uniform01() * (hi - lo);
    const auto count = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(frac * static_cast<double>(servers.size())));
    const auto idx = rng.sample_without_replacement(
        static_cast<std::uint32_t>(servers.size()),
        std::min<std::uint32_t>(count, static_cast<std::uint32_t>(servers.size())));
    std::vector<std::string> out;
    for (auto i : idx) out.push_back(servers[i]);
    return out;
  };
  static constexpr std::string_view kPrimaries[] = {
      "malware-domain-blocklist", "malware-domain-list", "virustotal", "wot"};

  switch (coverage) {
    case Coverage::kIds2012Total:
    case Coverage::kIds2012Partial:
    case Coverage::kIds2013Partial:
      // Signature registration is handled by the campaign builder (it
      // needs the request-level hook); here we only add the occasional
      // blacklist listing that co-occurs with IDS coverage.
      for (const auto& server : pick_subset(0.05, 0.2)) {
        ds_.blacklist.list(std::string(kPrimaries[rng.uniform(std::size(kPrimaries))]),
                           server);
      }
      break;
    case Coverage::kBlacklistPartial: {
      for (const auto& server : pick_subset(0.2, 0.6)) {
        if (rng.bernoulli(0.8)) {
          ds_.blacklist.list(std::string(kPrimaries[rng.uniform(std::size(kPrimaries))]),
                             server);
        } else {
          // Aggregated feeds need >= 2 listings to confirm.
          ds_.blacklist.list("agg-feed-" + std::to_string(rng.uniform(4)), server);
          ds_.blacklist.list("agg-feed-" + std::to_string(4 + rng.uniform(4)), server);
        }
      }
      break;
    }
    case Coverage::kSuspicious:
      // Liveness handled by the builder (requests must carry error codes);
      // nothing to register here.
      break;
    case Coverage::kUnconfirmed:
      break;
  }
  (void)campaign_name;
}

// --- generic campaigns ----------------------------------------------------------

void WorldBuilder::build_generic_campaign(const GenericCampaignSpec& spec,
                                          util::Rng& rng) {
  const auto clients = take_clients(spec.num_clients);
  const auto days = active_days(spec.dynamics, rng);
  const bool rotate = spec.dynamics == Dynamics::kAgile && cfg_.num_days > 1;

  std::optional<dns::FluxIpPool> flux;
  if (spec.dim_ip) flux.emplace(rng.fork("flux"), 5);
  whois::Record shared_whois = random_whois(rng, /*behind_proxy=*/false);

  // Shared short filenames (1-2) when the file dimension is on; otherwise
  // every server gets a unique filename.
  std::vector<std::string> shared_files;
  if (spec.dim_file && !spec.long_obfuscated_files) {
    const auto n = 1 + rng.uniform(2);
    const auto idx = rng.sample_without_replacement(
        static_cast<std::uint32_t>(std::size(kMalwareFiles)),
        static_cast<std::uint32_t>(n));
    for (auto i : idx) shared_files.emplace_back(kMalwareFiles[i]);
  }
  std::vector<std::string> obfuscated;
  if (spec.long_obfuscated_files) {
    auto obf_rng = rng.fork("obf");
    obfuscated = dns::obfuscated_filename_family(
        obf_rng, spec.num_servers * (rotate ? days.size() : 1));
  }

  const auto param_keys = random_param_keys(rng);
  const std::string ua = rng.bernoulli(0.5)
                             ? benign_user_agent(rng)
                             : "agent-" + std::to_string(rng.next() % 100000);

  // The extra "check-in" request IDS signatures match: a campaign-unique
  // parameter key makes the signature precise without touching the URI-file
  // dimension.
  const std::string sig_key = "sk" + std::to_string(signature_counter_++);
  const bool ids_total = spec.coverage == Coverage::kIds2012Total;
  const bool ids_partial = spec.coverage == Coverage::kIds2012Partial ||
                           spec.coverage == Coverage::kIds2013Partial;
  if (ids_total || ids_partial) {
    ids::Signature sig;
    sig.threat_id = "Threat." + spec.name;
    sig.param_pattern = sig_key + "=&t=";
    sig.vintage = spec.coverage == Coverage::kIds2013Partial ? ids::Vintage::k2013
                                                             : ids::Vintage::k2012;
    ds_.signatures.add(std::move(sig));
  }

  ids::CampaignTruth truth;
  truth.name = spec.name;
  truth.kind = spec.kind;
  truth.active_days = days;
  for (auto c : clients) truth.clients.push_back(client_names_[c]);

  // One "rotation group" per day when agile, otherwise a single group used
  // on all active days.
  const std::size_t num_groups = rotate ? days.size() : 1;
  std::size_t obf_cursor = 0;
  for (std::size_t group = 0; group < num_groups; ++group) {
    std::vector<std::string> servers;
    std::vector<std::string> server_files;  // per-server filename
    std::vector<bool> dead;
    for (std::uint32_t s = 0; s < spec.num_servers; ++s) {
      const std::string domain =
          rng.bernoulli(0.2) ? dns::random_alnum_domain(rng, 8 + rng.uniform(5), "cz.cc")
                             : fresh_domain(rng, rng.bernoulli(0.5) ? "com" : "info");
      servers.push_back(domain);
      truth.servers.push_back(dns::effective_2ld(domain));
      if (spec.dim_whois) {
        whois::Record rec = shared_whois;
        rec.registrant = "person-" + std::to_string(rng.next() % 100000000);
        ds_.whois.add(dns::effective_2ld(domain), std::move(rec));
      } else {
        register_whois(domain, rng);
      }
      if (spec.dim_ip) {
        for (const auto& ip : flux->draw(3)) resolve(domain, ip);
      } else {
        resolve_unique(domain, rng);
      }
      if (spec.long_obfuscated_files) {
        server_files.push_back(obfuscated[obf_cursor++]);
      } else if (spec.dim_file) {
        server_files.push_back(shared_files[s % shared_files.size()]);
      } else {
        server_files.push_back("u" + std::to_string(domain_counter_) + "_" +
                               std::to_string(s) + ".php");
      }
      const bool is_dead =
          spec.coverage == Coverage::kSuspicious && rng.bernoulli(0.7);
      dead.push_back(is_dead);
      if (is_dead) ds_.truth.mark_dead(dns::effective_2ld(domain));
    }

    // Which servers carry the signature-matching check-in.
    std::vector<bool> covered(servers.size(), false);
    if (ids_total) {
      covered.assign(servers.size(), true);
    } else if (ids_partial) {
      const auto count = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(servers.size() * (0.3 + rng.uniform01() * 0.2)));
      for (auto i : rng.sample_without_replacement(
               static_cast<std::uint32_t>(servers.size()), count)) {
        covered[i] = true;
      }
    }

    const auto group_days = rotate ? std::vector<std::uint32_t>{days[group]} : days;
    for (auto day : group_days) {
      for (auto c : clients) {
        for (std::size_t s = 0; s < servers.size(); ++s) {
          const auto beacons = 1 + rng.uniform(2);
          const std::uint16_t status = dead[s] ? 404 : 200;
          for (std::uint64_t i = 0; i < beacons; ++i) {
            emit(c, servers[s], day,
                 "/m/" + server_files[s] + "?" + random_params(rng, param_keys),
                 ua, "", status);
          }
          if (covered[s] && day == group_days.front()) {
            emit(c, servers[s], day,
                 "/m/" + server_files[s] + "?" + sig_key + "=" +
                     std::to_string(rng.next() % 1000) + "&t=1",
                 ua, "", status);
          }
        }
      }
    }
    apply_coverage(spec.coverage, spec.name, servers, {}, rng);
  }

  ds_.truth.add_campaign(std::move(truth));
}

void WorldBuilder::generate_generic_campaigns() {
  auto rng = root_.fork("generic");
  const auto& m = cfg_.malicious;

  const auto pick_dims = [&](GenericCampaignSpec& spec) {
    // Fig. 8 mix: URI-file alone dominates; IP/Whois mostly assist.
    const double r = rng.uniform01();
    spec.dim_file = true;
    spec.dim_ip = false;
    spec.dim_whois = false;
    if (r < 0.50) {
      // file only
    } else if (r < 0.64) {
      spec.dim_ip = true;  // file + ip
    } else if (r < 0.80) {
      spec.dim_whois = true;  // file + whois
    } else if (r < 0.95) {
      spec.dim_ip = spec.dim_whois = true;  // all three
    } else {
      spec.dim_file = false;  // ip + whois only
      spec.dim_ip = spec.dim_whois = true;
    }
  };
  const auto pick_coverage = [&] {
    const double r = rng.uniform01();
    if (r < 0.06) return Coverage::kIds2012Partial;
    if (r < 0.18) return Coverage::kIds2013Partial;
    if (r < 0.72) return Coverage::kBlacklistPartial;
    if (r < 0.88) return Coverage::kSuspicious;
    return Coverage::kUnconfirmed;
  };
  const auto pick_kind = [&] {
    const double r = rng.uniform01();
    if (r < 0.15) return ids::CampaignKind::kCnc;
    if (r < 0.85) return ids::CampaignKind::kOtherMalicious;
    if (r < 0.93) return ids::CampaignKind::kPhishing;
    return ids::CampaignKind::kDropZone;
  };
  const auto pick_size = [&] {
    // Skewed small: ~75% of campaigns below ~18 servers (paper Fig. 6).
    const double r = rng.uniform01();
    return m.generic_min_servers +
           static_cast<std::uint32_t>(
               r * r * (m.generic_max_servers - m.generic_min_servers));
  };
  const auto pick_dynamics = [&] {
    if (cfg_.num_days == 1) return Dynamics::kPersistent;
    const double r = rng.uniform01();
    if (r < cfg_.persistent_fraction) return Dynamics::kPersistent;
    if (r < cfg_.persistent_fraction + cfg_.agile_fraction) return Dynamics::kAgile;
    return Dynamics::kNew;
  };

  for (std::uint32_t i = 0; i < m.num_generic_multi_client; ++i) {
    GenericCampaignSpec spec;
    spec.name = "generic-mc-" + std::to_string(i);
    spec.kind = pick_kind();
    spec.num_servers = pick_size();
    spec.num_clients = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    pick_dims(spec);
    spec.coverage = pick_coverage();
    spec.dynamics = pick_dynamics();
    auto campaign_rng = rng.fork(spec.name);
    build_generic_campaign(spec, campaign_rng);
  }

  for (std::uint32_t i = 0; i < m.num_generic_single_client; ++i) {
    GenericCampaignSpec spec;
    spec.name = "generic-sc-" + std::to_string(i);
    spec.kind = pick_kind();
    spec.num_servers = std::max<std::uint32_t>(2, pick_size());
    spec.num_clients = 1;
    pick_dims(spec);
    spec.coverage = pick_coverage();
    spec.dynamics = pick_dynamics();
    auto campaign_rng = rng.fork(spec.name);
    build_generic_campaign(spec, campaign_rng);
  }

  // Deliberate false negatives: no secondary dimension at all, only a
  // shared parameter pattern (the Cycbot/FakeAV/Tidserv shape of §V-A2).
  for (std::uint32_t i = 0; i < m.num_no_secondary; ++i) {
    GenericCampaignSpec spec;
    spec.name = "nosec-" + std::to_string(i);
    spec.kind = ids::CampaignKind::kCnc;
    spec.num_servers = 5 + static_cast<std::uint32_t>(rng.uniform(6));
    spec.num_clients = 2 + static_cast<std::uint32_t>(rng.uniform(2));
    spec.dim_file = spec.dim_ip = spec.dim_whois = false;
    spec.coverage = Coverage::kIds2012Total;
    spec.dynamics = Dynamics::kPersistent;
    auto campaign_rng = rng.fork(spec.name);
    build_generic_campaign(spec, campaign_rng);
  }
}

// --- flagship case studies ------------------------------------------------------

void WorldBuilder::generate_flagship_campaigns() {
  auto rng = root_.fork("flagship");
  for (std::uint32_t i = 0; i < cfg_.malicious.num_zeus; ++i) {
    auto r = rng.fork("zeus" + std::to_string(i));
    generate_zeus(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_bagle; ++i) {
    auto r = rng.fork("bagle" + std::to_string(i));
    generate_bagle(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_sality; ++i) {
    auto r = rng.fork("sality" + std::to_string(i));
    generate_sality(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_iframe; ++i) {
    auto r = rng.fork("iframe" + std::to_string(i));
    generate_iframe_injection(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_scans; ++i) {
    auto r = rng.fork("scan" + std::to_string(i));
    generate_scan(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_phishing; ++i) {
    auto r = rng.fork("phish" + std::to_string(i));
    generate_phishing(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_dropzone; ++i) {
    auto r = rng.fork("dropzone" + std::to_string(i));
    generate_dropzone(r, i);
  }
  for (std::uint32_t i = 0; i < cfg_.malicious.num_web_exploit; ++i) {
    auto r = rng.fork("exploit" + std::to_string(i));
    generate_web_exploit(r, i);
  }
}

// Zeus (Table X): DGA sibling domains in a free zone, same flux IPs, same
// whois, all serving login.php. 2013 signatures know it; 2012 ones do not.
void WorldBuilder::generate_zeus(util::Rng& rng, std::uint32_t instance) {
  const auto domains = dns::zeus_style_family(rng, cfg_.malicious.zeus_domains);
  const auto clients = take_clients(2 + static_cast<std::uint32_t>(rng.uniform(3)));
  dns::FluxIpPool flux(rng.fork("ip"), 5);
  const whois::Record shared = random_whois(rng, false);

  ids::Signature sig;
  sig.threat_id = "Trojan.Zbot";
  sig.uri_file = "login.php";
  sig.param_pattern = "uid=&cmd=";
  sig.vintage = ids::Vintage::k2013;
  ds_.signatures.add(std::move(sig));
  ds_.blacklist.list("zeus-tracker", dns::effective_2ld(domains.front()));

  ids::CampaignTruth truth;
  truth.name = "zeus-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kCnc;
  for (auto c : clients) truth.clients.push_back(client_names_[c]);

  for (const auto& domain : domains) {
    truth.servers.push_back(dns::effective_2ld(domain));
    for (const auto& ip : flux.draw(3)) resolve(domain, ip);
    whois::Record rec = shared;
    rec.registrant = "person-" + std::to_string(rng.next() % 100000000);
    ds_.whois.add(dns::effective_2ld(domain), std::move(rec));
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : clients) {
        const auto beacons = 1 + rng.uniform(3);
        for (std::uint64_t i = 0; i < beacons; ++i) {
          emit(c, domain, day,
               "/login.php?uid=" + std::to_string(rng.next() % 100000) + "&cmd=ping",
               "Mozilla/4.0 (compatible; MSIE 6.0)", "");
        }
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Bagle (Table VII): two tiers sharing one bot population — compromised
// download sites serving /images/file.txt, and C&C servers serving
// /images/news.php?p=&id=&e=. Only a few C&C servers are blacklisted.
void WorldBuilder::generate_bagle(util::Rng& rng, std::uint32_t instance) {
  const auto clients = take_clients(2 + static_cast<std::uint32_t>(rng.uniform(2)));
  ids::CampaignTruth truth;
  truth.name = "bagle-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kOtherMalicious;
  for (auto c : clients) truth.clients.push_back(client_names_[c]);

  std::vector<std::string> cnc;
  for (std::uint32_t s = 0; s < cfg_.malicious.bagle_cnc_servers; ++s) {
    // Compromised legitimate sites: some benign traffic, unrelated whois/IPs.
    cnc.push_back(make_victim_server(rng, nullptr));
    truth.servers.push_back(dns::effective_2ld(cnc.back()));
  }
  std::vector<std::string> download;
  for (std::uint32_t s = 0; s < cfg_.malicious.bagle_download_servers; ++s) {
    download.push_back(make_victim_server(rng, nullptr));
    truth.servers.push_back(dns::effective_2ld(download.back()));
  }
  // Three C&C servers known to one blacklist, as in the paper.
  for (std::uint32_t i = 0; i < std::min<std::uint32_t>(3, cnc.size()); ++i) {
    ds_.blacklist.list("virustotal", dns::effective_2ld(cnc[i]));
  }

  for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
    for (auto c : clients) {
      for (const auto& server : download) {
        emit(c, server, day, "/images/file.txt", "Mozilla/4.0 (compatible; MSIE 7.0)",
             "");
      }
      for (const auto& server : cnc) {
        emit(c, server, day,
             "/images/news.php?p=" + std::to_string(rng.next() % 65536) +
                 "&id=" + std::to_string(rng.next() % 100000000) + "&e=0",
             "Internet Exploder", "");
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Sality (Table VIII): two C&C domains sharing IPs + whois and serving "/",
// plus compromised download sites sharing .gif payload names. All requests
// carry the KUKU user-agent, which the 2012 IDS signature matches.
void WorldBuilder::generate_sality(util::Rng& rng, std::uint32_t instance) {
  const auto clients = take_clients(2);
  ids::CampaignTruth truth;
  truth.name = "sality-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kCnc;
  for (auto c : clients) truth.clients.push_back(client_names_[c]);

  ids::Signature sig;
  sig.threat_id = "W32.Sality";
  sig.user_agent = "KUKU v5.05exp";
  sig.vintage = ids::Vintage::k2012;
  ds_.signatures.add(std::move(sig));

  // C&C pair.
  dns::FluxIpPool flux(rng.fork("ip"), 3);
  const whois::Record shared = random_whois(rng, false);
  std::vector<std::string> cnc;
  for (int i = 0; i < 2; ++i) {
    cnc.push_back(dns::random_alnum_domain(rng, 14, "info"));
    truth.servers.push_back(dns::effective_2ld(cnc.back()));
    for (const auto& ip : flux.draw(2)) resolve(cnc.back(), ip);
    ds_.whois.add(dns::effective_2ld(cnc.back()), shared);
    ds_.blacklist.list("malware-domain-list", dns::effective_2ld(cnc.back()));
  }
  // Download tier: 14 compromised sites over two payload names; the larger
  // subset is big enough to clear thresh = 0.8 on the URI-file dimension.
  constexpr std::string_view kGifs[] = {"logos.gif", "mainf.gif"};
  std::vector<std::string> download;
  for (std::uint32_t s = 0; s < 14; ++s) {
    download.push_back(make_victim_server(rng, nullptr));
    truth.servers.push_back(dns::effective_2ld(download.back()));
    if (s < 6) {
      ds_.blacklist.list("malware-domain-blocklist",
                         dns::effective_2ld(download.back()));
    }
  }

  for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
    for (auto c : clients) {
      for (int i = 0; i < 2; ++i) {
        emit(c, cnc[i], day,
             "/?" + std::to_string(rng.next() % 1000000) + "=" +
                 std::to_string(rng.next() % 100000000),
             "KUKU v5.05exp", "");
      }
      for (std::uint32_t s = 0; s < download.size(); ++s) {
        const auto gif = kGifs[s < 9 ? 0 : 1];  // 9 logos.gif, 5 mainf.gif
        emit(c, download[s], day,
             "/images/" + std::string(gif) + "?" +
                 std::to_string(rng.next() % 1000000) + "=" +
                 std::to_string(rng.next() % 100000000),
             "KUKU v5.05exp", "");
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Iframe injection (Table IX): hundreds of WordPress sites carrying an
// uploaded sm3.php, all polled by the same injector clients with UA "-".
// The 2013 IDS knows only the upload exploit, which hit 4 sites.
void WorldBuilder::generate_iframe_injection(util::Rng& rng, std::uint32_t instance) {
  const auto injectors = take_clients(3);
  ids::CampaignTruth truth;
  truth.name = "iframe-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kIframeInjection;
  for (auto c : injectors) truth.clients.push_back(client_names_[c]);

  ids::Signature sig;
  sig.threat_id = "WP.UploadExploit";
  sig.uri_file = "sm3.php";
  sig.param_pattern = "act=&payload=";
  sig.vintage = ids::Vintage::k2013;
  ds_.signatures.add(std::move(sig));

  constexpr std::string_view kInjectPaths[] = {
      "/images/sm3.php", "/wp-content/uploads/sm3.php", "/wp-content/sm3.php",
      "/uploads/sm3.php"};

  for (std::uint32_t s = 0; s < cfg_.malicious.iframe_targets; ++s) {
    const std::string victim = make_victim_server(rng, nullptr);
    truth.servers.push_back(dns::effective_2ld(victim));
    const std::string inject_path(kInjectPaths[rng.uniform(std::size(kInjectPaths))]);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : injectors) {
        emit(c, victim, day, inject_path, "-", "");
      }
      if (s < 4) {  // the 4 servers whose exploit upload the IDS witnessed;
                    // injectors re-upload daily (shells get cleaned up)
        emit(injectors[0], victim, day,
             inject_path + "?act=put&payload=" + std::to_string(rng.next() % 100000000),
             "-", "");
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// ZmEu-style scanning (Fig. 1b): a couple of scanner clients probing
// setup.php across many benign servers. Instance 0 is fully covered by a
// 2012 signature (the "IDS 2012 total" row); instance 1 is partially
// covered by a 2013-only signature on a secondary probe.
void WorldBuilder::generate_scan(util::Rng& rng, std::uint32_t instance) {
  const auto scanners = take_clients(2 + static_cast<std::uint32_t>(rng.uniform(2)));
  const auto num_targets = static_cast<std::uint32_t>(
      cfg_.malicious.scan_min_targets +
      rng.uniform(cfg_.malicious.scan_max_targets - cfg_.malicious.scan_min_targets + 1));

  ids::CampaignTruth truth;
  truth.name = "scan-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kWebScanner;
  for (auto c : scanners) truth.clients.push_back(client_names_[c]);

  // The IDS knows the scanner's rare follow-up exploit probe, not the bulk
  // setup.php sweep — so it labels only the handful of targets that drew
  // the follow-up (the paper's IDS confirms ~20 of thousands of servers).
  const bool zmeu = instance % 2 == 0;
  const std::string scan_file = zmeu ? "setup.php" : "wsetup.php";
  const std::string probe_file = zmeu ? "sqlpatch.php" : "xinfo.php";
  const std::string scanner_ua = zmeu ? "ZmEu" : "Morfeus scanner";
  const double probe_probability = zmeu ? 0.08 : 0.12;
  {
    ids::Signature sig;
    sig.threat_id = zmeu ? "Scanner.ZmEu" : "Scanner.Morfeus";
    sig.user_agent = scanner_ua;
    sig.uri_file = probe_file;
    sig.vintage = zmeu ? ids::Vintage::k2012 : ids::Vintage::k2013;
    ds_.signatures.add(std::move(sig));
  }

  constexpr std::string_view kProbePaths[] = {"/phpmyadmin/", "/pma/", "/admin/",
                                              "/dbadmin/", "/mysql/"};
  for (std::uint32_t t = 0; t < num_targets; ++t) {
    const std::string victim = make_victim_server(rng, nullptr);
    truth.servers.push_back(dns::effective_2ld(victim));
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      if (cfg_.num_days > 1 && day % 2 != instance % 2) continue;  // scan waves
      for (auto c : scanners) {
        const std::string base(kProbePaths[rng.uniform(std::size(kProbePaths))]);
        // Probes usually miss: 404 from the victim.
        emit(c, victim, day, base + scan_file, scanner_ua, "", /*status=*/404);
        if (rng.bernoulli(probe_probability)) {
          emit(c, victim, day, base + probe_file, scanner_ua, "", 404);
        }
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Phishing kit: a handful of sibling fakes sharing hosting, registration
// and the kit's verify.php; partially on Phishtank.
void WorldBuilder::generate_phishing(util::Rng& rng, std::uint32_t instance) {
  const auto victims = take_clients(2);
  dns::FluxIpPool flux(rng.fork("ip"), 3);
  const whois::Record shared = random_whois(rng, false);

  ids::CampaignTruth truth;
  truth.name = "phish-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kPhishing;
  for (auto c : victims) truth.clients.push_back(client_names_[c]);

  for (std::uint32_t s = 0; s < 5; ++s) {
    const std::string domain = "secure-" + fresh_domain(rng, "net");
    truth.servers.push_back(dns::effective_2ld(domain));
    for (const auto& ip : flux.draw(2)) resolve(domain, ip);
    ds_.whois.add(dns::effective_2ld(domain), shared);
    if (s < 3) ds_.blacklist.list("phishtank", dns::effective_2ld(domain));
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : victims) {
        emit(c, domain, day, "/account/verify.php?session=" +
                                 std::to_string(rng.next() % 100000000),
             benign_user_agent(rng), "");
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Drop zone: two exfiltration gates sharing hosting and gate.php.
void WorldBuilder::generate_dropzone(util::Rng& rng, std::uint32_t instance) {
  const auto bots = take_clients(2);
  dns::FluxIpPool flux(rng.fork("ip"), 2);

  ids::Signature sig;
  sig.threat_id = "Infostealer.Gate";
  sig.uri_file = "gate.php";
  sig.param_pattern = "bid=&data=";
  sig.vintage = ids::Vintage::k2013;
  ds_.signatures.add(std::move(sig));

  ids::CampaignTruth truth;
  truth.name = "dropzone-" + std::to_string(instance);
  truth.kind = ids::CampaignKind::kDropZone;
  for (auto c : bots) truth.clients.push_back(client_names_[c]);

  for (std::uint32_t s = 0; s < 2; ++s) {
    const std::string domain = fresh_domain(rng, "biz");
    truth.servers.push_back(dns::effective_2ld(domain));
    for (const auto& ip : flux.draw(2)) resolve(domain, ip);
    register_whois(domain, rng);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : bots) {
        emit(c, domain, day,
             "/gate.php?bid=" + std::to_string(rng.next() % 10000) + "&data=" +
                 std::to_string(rng.next() % 100000000),
             "Mozilla/4.0 (compatible; MSIE 6.0; Win32)", "", 200);
      }
    }
  }
  ds_.truth.add_campaign(std::move(truth));
}

// Exploit-kit herd with per-server obfuscated long filenames (Fig. 4):
// only the character-distribution branch of URI-file similarity links them.
void WorldBuilder::generate_web_exploit(util::Rng& rng, std::uint32_t instance) {
  GenericCampaignSpec spec;
  spec.name = "exploitkit-" + std::to_string(instance);
  spec.kind = ids::CampaignKind::kWebExploit;
  spec.num_servers = 9;
  spec.num_clients = 2;
  spec.dim_file = true;
  spec.dim_ip = true;
  spec.dim_whois = false;
  spec.long_obfuscated_files = true;
  // IDS-covered so the long obfuscated names appear in the Fig. 10
  // filename-length distribution of labeled servers (the paper's 211-char
  // outliers, Appendix B).
  spec.coverage = Coverage::kIds2013Partial;
  spec.dynamics = Dynamics::kPersistent;
  build_generic_campaign(spec, rng);
}

}  // namespace smash::synth::internal
